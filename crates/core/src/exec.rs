//! The plan executor: evaluates the relational algebra DAG against the
//! column-store kernel and an immutable snapshot of the document store.
//!
//! All intermediate results are materialised `iter|pos|item` tables (exactly
//! like MonetDB/XQuery materialises its temporary BATs); shared sub-plans are
//! evaluated once and memoised by plan id.  The order-aware mode (Section
//! 4.1) decides between the sort-based and the streaming (hash-based) row
//! numbering and prunes sorts whose order is already established; the
//! staircase-join switches (Section 3) pick between the loop-lifted and the
//! iterative axis step and enable the nametest pushdown.
//!
//! The executor reads loaded documents through a [`StoreSnapshot`] and never
//! mutates shared state: nodes built by element constructors go into a
//! *private* transient container owned by the executor, which the caller
//! takes over ([`Executor::finish`]) together with the result items.  This
//! is what makes one compiled plan executable from many sessions/threads
//! concurrently — every execution has its own scratch space and pins its own
//! store snapshot.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use mxq_engine::agg::{aggregate_grouped_with, aggregate_hash, AggFunc};
use mxq_engine::join::{radix_hash_join_with, theta_join_nested};
use mxq_engine::rank::row_number_streaming_with;
use mxq_engine::sort::{sort_permutation_with, SortOrder};
use mxq_engine::value::format_double;
use mxq_engine::{CmpOp, Column, EngineError, Item, NodeId, Table};
use mxq_staircase::{
    looplifted_step, looplifted_step_candidates, staircase_step, Axis, NodeTest, ScanStats,
};
use mxq_xmldb::{
    ContainerRef, DocStore, Document, DocumentBuilder, NodeRead, StoreSnapshot, TRANSIENT_FRAG,
};

use crate::algebra::{NumFnKind, Op, PlanRef, PosFilterKind, StrFnKind};
use crate::ast::ArithOp;
use crate::config::{ExecConfig, ExecStats};
use crate::params::Params;

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// An engine-level failure (type/length mismatch).
    Engine(EngineError),
    /// `fn:doc` referenced a document that is not loaded.
    UnknownDocument(String),
    /// An external variable was not bound and has no declared default.
    UnboundVariable(String),
    /// A binding was supplied for a name the statement does not declare as
    /// an external variable (usually a typo in the bind name).
    NotExternal(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Engine(e) => write!(f, "engine error: {e}"),
            ExecError::UnknownDocument(d) => write!(f, "document not loaded: {d}"),
            ExecError::UnboundVariable(v) => {
                write!(
                    f,
                    "external variable ${v} is not bound (and has no default)"
                )
            }
            ExecError::NotExternal(v) => {
                write!(
                    f,
                    "a binding was supplied for ${v}, which the statement does not \
                     declare as an external variable"
                )
            }
            ExecError::Internal(m) => write!(f, "internal executor error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EngineError> for ExecError {
    fn from(e: EngineError) -> Self {
        ExecError::Engine(e)
    }
}

type EResult<T> = Result<T, ExecError>;

/// The executor.  Reads loaded documents through an immutable store
/// snapshot, constructs new nodes into a private transient container, and
/// resolves external variables against a [`Params`] binding set.
pub struct Executor<'a> {
    snap: &'a StoreSnapshot,
    /// Private scratch container for constructed nodes (fragment 0 of this
    /// execution); taken over by [`Executor::finish`].
    transient: Document,
    config: ExecConfig,
    params: Params,
    /// Resolved worker-thread count for the parallel kernels: the
    /// [`ExecConfig::threads`] request with `0` ("auto") resolved against
    /// `MXQ_THREADS` once at construction.
    threads: usize,
    /// Statistics accumulated over all [`Executor::eval`] calls.
    pub stats: ExecStats,
    memo: HashMap<usize, Rc<Table>>,
    /// Lazily grown property map for runtime validation; `Some` when
    /// [`ExecConfig::validate_plans`] or `MXQ_VALIDATE_PLANS=1` is set.
    validation: Option<crate::analysis::Analysis>,
    /// Store fragments this execution has read (documents resolved by
    /// `fn:doc`, node items entering through external variables, and every
    /// container access).  The update pipeline latches this read set along
    /// with the write set, so a concurrent commit cannot invalidate what a
    /// committing update computed from — see `Database::apply_update`.
    reads: std::cell::RefCell<std::collections::HashSet<u32>>,
    /// Last fragment recorded into `reads` — container access is per-node
    /// in a few hot paths, and runs of accesses hit the same fragment.
    last_read: std::cell::Cell<u32>,
}

// -- small helpers over sequence tables --------------------------------------

fn seq_table(iter: Vec<i64>, pos: Vec<i64>, items: Vec<Item>) -> Table {
    Table::from_columns(vec![
        ("iter", Column::Int(iter)),
        ("pos", Column::Int(pos)),
        ("item", Column::from_items(items)),
    ])
    .expect("sequence table construction")
}

fn iter_col(t: &Table) -> EResult<Vec<i64>> {
    Ok(t.column("iter")?.as_int()?.to_vec())
}

fn items_col(t: &Table) -> EResult<Vec<Item>> {
    Ok(t.column("item")?.to_items())
}

fn pos_col(t: &Table) -> EResult<Vec<i64>> {
    Ok(t.column("pos")?.as_int()?.to_vec())
}

impl<'a> Executor<'a> {
    /// Create an executor over a store snapshot with no external bindings.
    pub fn new(snap: &'a StoreSnapshot, config: ExecConfig) -> Self {
        Self::with_params(snap, config, Params::default())
    }

    /// Create an executor over a store snapshot with external-variable
    /// bindings.
    pub fn with_params(snap: &'a StoreSnapshot, config: ExecConfig, params: Params) -> Self {
        let validate =
            config.validate_plans || std::env::var("MXQ_VALIDATE_PLANS").is_ok_and(|v| v == "1");
        let threads = mxq_engine::par::resolve_threads(config.threads);
        Executor {
            snap,
            transient: Document::new("#transient"),
            config,
            params,
            threads,
            stats: ExecStats::default(),
            memo: HashMap::new(),
            validation: validate.then(crate::analysis::Analysis::default),
            reads: std::cell::RefCell::new(std::collections::HashSet::new()),
            last_read: std::cell::Cell::new(TRANSIENT_FRAG),
        }
    }

    /// Finish the execution: hand back the private transient container
    /// (holding every node constructed by the evaluated plans) and the
    /// runtime statistics.
    pub fn finish(self) -> (Document, ExecStats) {
        (self.transient, self.stats)
    }

    /// Borrow the private transient container of this execution.
    pub fn transient(&self) -> &Document {
        &self.transient
    }

    /// Record a store fragment into the read set (the private transient
    /// container is not shared state and is never recorded).
    fn record_read(&self, frag: u32) {
        if frag != TRANSIENT_FRAG && self.last_read.get() != frag {
            self.last_read.set(frag);
            self.reads.borrow_mut().insert(frag);
        }
    }

    /// The store fragments this execution has read so far, in ascending
    /// order.  Every fragment whose content can have influenced a result —
    /// documents resolved via `fn:doc`, node bindings from external
    /// variables, and any container access — is included; axis steps never
    /// leave a fragment, so recording the entry points is exhaustive.
    pub fn read_fragments(&self) -> Vec<u32> {
        let mut frags: Vec<u32> = self.reads.borrow().iter().copied().collect();
        frags.sort_unstable();
        frags
    }

    /// Resolve a fragment id: the executor's own transient container for
    /// fragment 0, the snapshot's document containers (page-backed for
    /// loaded documents) otherwise.
    fn container(&self, frag: u32) -> ContainerRef<'_> {
        if frag == TRANSIENT_FRAG {
            ContainerRef::Doc(&self.transient)
        } else {
            self.record_read(frag);
            self.snap.container(frag)
        }
    }

    fn node_string_value(&self, n: NodeId) -> String {
        self.container(n.frag).string_value(n.pre)
    }

    /// Evaluate a plan, returning its `iter|pos|item` table.  The table is
    /// shared (`Rc`) with the memo, so repeated evaluation of a shared
    /// sub-plan costs one reference-count bump, not a deep column copy.
    pub fn eval(&mut self, plan: &PlanRef) -> EResult<Rc<Table>> {
        if let Some(t) = self.memo.get(&plan.id) {
            return Ok(t.clone());
        }
        let t = Rc::new(self.eval_op(plan)?);
        self.stats.ops_evaluated += 1;
        self.stats.record_table(t.nrows());
        if let Some(analysis) = self.validation.as_mut() {
            if analysis.get(plan.id).is_none() {
                analysis.extend_with(plan);
            }
            if let Some(props) = analysis.get(plan.id) {
                if let Err(msg) = crate::analysis::validate_table(props, &t) {
                    return Err(ExecError::Internal(format!(
                        "inferred plan property violated at [{}] {}: {msg}",
                        plan.id,
                        plan.op_name()
                    )));
                }
            }
        }
        self.memo.insert(plan.id, t.clone());
        Ok(t)
    }

    /// Evaluate and extract the result items of the outermost iteration in
    /// sequence order.
    pub fn eval_result(&mut self, plan: &PlanRef) -> EResult<Vec<Item>> {
        let t = self.eval(plan)?;
        let sorted = self.sorted_seq(&t, plan)?;
        items_col(&sorted)
    }

    /// Ensure a sequence table is sorted by `[iter, pos]`, consulting the
    /// plan's order properties when the order-aware mode is on.  Returns the
    /// input table (shared, no copy) when its order is already established.
    fn sorted_seq(&mut self, t: &Rc<Table>, plan: &PlanRef) -> EResult<Rc<Table>> {
        if self.config.order_aware && plan.props.ord_iter_pos {
            self.stats.sorts_avoided += 1;
            return Ok(t.clone());
        }
        self.sort_by_iter_pos(t)
    }

    fn sort_by_iter_pos(&mut self, t: &Table) -> EResult<Rc<Table>> {
        self.stats.sorts += 1;
        let keys = [
            (t.column("iter")?, SortOrder::Asc),
            (t.column("pos")?, SortOrder::Asc),
        ];
        let perm = sort_permutation_with(
            &[(keys[0].0, keys[0].1), (keys[1].0, keys[1].1)],
            self.threads,
        );
        Ok(Rc::new(t.gather_with(&perm, self.threads)))
    }

    /// First (lowest-pos) item of every iteration, as (iter → item).
    fn per_iter_first(&mut self, t: &Table) -> EResult<HashMap<i64, Item>> {
        let iters = iter_col(t)?;
        let poss = pos_col(t)?;
        let items = items_col(t)?;
        let mut best: HashMap<i64, (i64, Item)> = HashMap::new();
        for i in 0..t.nrows() {
            match best.get(&iters[i]) {
                Some((p, _)) if *p <= poss[i] => {}
                _ => {
                    best.insert(iters[i], (poss[i], items[i].clone()));
                }
            }
        }
        Ok(best.into_iter().map(|(k, (_, v))| (k, v)).collect())
    }

    /// All items of every iteration, ordered by pos, as (iter → items).
    fn per_iter_items(&mut self, t: &Table) -> EResult<HashMap<i64, Vec<Item>>> {
        let iters = iter_col(t)?;
        let poss = pos_col(t)?;
        let items = items_col(t)?;
        let mut groups: HashMap<i64, Vec<(i64, Item)>> = HashMap::new();
        for i in 0..t.nrows() {
            groups
                .entry(iters[i])
                .or_default()
                .push((poss[i], items[i].clone()));
        }
        Ok(groups
            .into_iter()
            .map(|(k, mut v)| {
                v.sort_by_key(|(p, _)| *p);
                (k, v.into_iter().map(|(_, it)| it).collect())
            })
            .collect())
    }

    fn loop_iters(&mut self, loop_: &PlanRef) -> EResult<Vec<i64>> {
        let t = self.eval(loop_)?;
        let mut iters = t.column("iter")?.as_int()?.to_vec();
        if !self.config.order_aware || !loop_.props.ord_iter_pos {
            self.stats.sorts += 1;
            iters.sort_unstable();
        } else {
            self.stats.sorts_avoided += 1;
        }
        Ok(iters)
    }

    fn atomize_item(&self, item: &Item) -> Item {
        match item {
            Item::Node(n) => Item::str(self.node_string_value(*n)),
            other => other.clone(),
        }
    }

    fn item_string(&self, item: &Item) -> String {
        match item {
            Item::Node(n) => self.node_string_value(*n),
            other => other.string_value(),
        }
    }

    // -------------------------------------------------------------------
    // operator dispatch
    // -------------------------------------------------------------------

    fn eval_op(&mut self, plan: &PlanRef) -> EResult<Table> {
        match &plan.op {
            Op::LoopOne => {
                Table::from_columns(vec![("iter", Column::Int(vec![1]))]).map_err(Into::into)
            }
            Op::ConstSeq { loop_, items } => {
                let iters = self.loop_iters(loop_)?;
                let mut oi = Vec::new();
                let mut op = Vec::new();
                let mut oit = Vec::new();
                for it in iters {
                    for (k, item) in items.iter().enumerate() {
                        oi.push(it);
                        op.push(k as i64 + 1);
                        oit.push(item.clone());
                    }
                }
                Ok(seq_table(oi, op, oit))
            }
            Op::DocRoot { loop_, name } => {
                let root = self
                    .snap
                    .document_root(name)
                    .ok_or_else(|| ExecError::UnknownDocument(name.clone()))?;
                self.record_read(root.frag);
                let iters = self.loop_iters(loop_)?;
                let n = iters.len();
                Ok(seq_table(iters, vec![1; n], vec![Item::Node(root); n]))
            }
            Op::ExternalVar {
                loop_,
                name,
                default,
            } => {
                let items: Vec<Item> = match self.params.get(name) {
                    Some(bound) => bound.to_vec(),
                    None => match default {
                        Some(d) => return Ok((*self.eval(d)?).clone()),
                        None => return Err(ExecError::UnboundVariable(name.clone())),
                    },
                };
                for item in &items {
                    if let Item::Node(n) = item {
                        self.record_read(n.frag);
                    }
                }
                let iters = self.loop_iters(loop_)?;
                let mut oi = Vec::new();
                let mut op = Vec::new();
                let mut oit = Vec::new();
                for it in iters {
                    for (k, item) in items.iter().enumerate() {
                        oi.push(it);
                        op.push(k as i64 + 1);
                        oit.push(item.clone());
                    }
                }
                Ok(seq_table(oi, op, oit))
            }
            Op::NestFromSeq { seq } => {
                let t = self.eval(seq)?;
                let sorted = self.sorted_seq(&t, seq)?;
                let iters = iter_col(&sorted)?;
                let poss = pos_col(&sorted)?;
                let items = items_col(&sorted)?;
                let n = sorted.nrows();
                let inner: Vec<i64> = (1..=n as i64).collect();
                Table::from_columns(vec![
                    ("outer", Column::Int(iters)),
                    ("inner", Column::Int(inner)),
                    ("pos", Column::Int(poss)),
                    ("item", Column::from_items(items)),
                ])
                .map_err(Into::into)
            }
            Op::NestFromJoin {
                source,
                outer_loop,
                left,
                right,
                op,
                dict_join,
            } => self.eval_nest_from_join(source, outer_loop, left, right, *op, *dict_join),
            Op::NestLoop { nest } => {
                let t = self.eval(nest)?;
                Table::from_columns(vec![("iter", t.column("inner")?.clone())]).map_err(Into::into)
            }
            Op::NestVar { nest } => {
                let t = self.eval(nest)?;
                let n = t.nrows();
                Table::from_columns(vec![
                    ("iter", t.column("inner")?.clone()),
                    ("pos", Column::Int(vec![1; n])),
                    ("item", t.column("item")?.clone()),
                ])
                .map_err(Into::into)
            }
            Op::NestVarPos { nest } => {
                let t = self.eval(nest)?;
                let n = t.nrows();
                Table::from_columns(vec![
                    ("iter", t.column("inner")?.clone()),
                    ("pos", Column::Int(vec![1; n])),
                    ("item", t.column("pos")?.clone()),
                ])
                .map_err(Into::into)
            }
            Op::LiftThrough { seq, nest } => self.eval_lift_through(seq, nest),
            Op::BackMap {
                body,
                nest,
                order_keys,
            } => self.eval_back_map(body, nest, order_keys),
            Op::SelectIters {
                cond,
                loop_,
                negate,
            } => {
                let c = self.eval(cond)?;
                let firsts = self.per_iter_first(&c)?;
                let loop_iters = self.loop_iters(loop_)?;
                let mut out = Vec::new();
                for it in loop_iters {
                    let truth = firsts
                        .get(&it)
                        .map(|v| v.effective_boolean())
                        .unwrap_or(false);
                    if truth != *negate {
                        out.push(it);
                    }
                }
                Table::from_columns(vec![("iter", Column::Int(out))]).map_err(Into::into)
            }
            Op::RestrictToIters { seq, iters } => {
                let t = self.eval(seq)?;
                let keep: std::collections::HashSet<i64> =
                    self.loop_iters(iters)?.into_iter().collect();
                let ti = iter_col(&t)?;
                let mask: Vec<bool> = ti.iter().map(|i| keep.contains(i)).collect();
                t.filter(&mask).map_err(Into::into)
            }
            Op::Union { parts } => self.eval_union(parts),
            Op::AxisStep { ctx, axis, test } => self.eval_axis_step(ctx, *axis, test),
            Op::AttrStep { ctx, name } => self.eval_attr_step(ctx, name.as_deref()),
            Op::Arith { op, l, r } => self.eval_arith(*op, l, r),
            Op::Neg { e } => {
                let t = self.eval(e)?;
                let items: Vec<Item> = items_col(&t)?
                    .iter()
                    .map(|i| Item::Dbl(-self.atomize_item(i).as_number().unwrap_or(f64::NAN)))
                    .collect();
                Ok(seq_table(iter_col(&t)?, pos_col(&t)?, items))
            }
            Op::ValueCmp { op, l, r } => {
                let lt = self.eval(l)?;
                let rt = self.eval(r)?;
                let lf = self.per_iter_first(&lt)?;
                let rf = self.per_iter_first(&rt)?;
                let mut iters: Vec<i64> =
                    lf.keys().filter(|k| rf.contains_key(k)).copied().collect();
                iters.sort_unstable();
                let items: Vec<Item> = iters
                    .iter()
                    .map(|it| Item::Bool(lf[it].compare(*op, &rf[it])))
                    .collect();
                let n = iters.len();
                Ok(seq_table(iters, vec![1; n], items))
            }
            Op::GeneralCmp { op, l, r, loop_ } => {
                let lt = self.eval(l)?;
                let rt = self.eval(r)?;
                let lg = self.per_iter_items(&lt)?;
                let rg = self.per_iter_items(&rt)?;
                let iters = self.loop_iters(loop_)?;
                let mut out_items = Vec::with_capacity(iters.len());
                for it in &iters {
                    let (Some(ls), Some(rs)) = (lg.get(it), rg.get(it)) else {
                        out_items.push(Item::Bool(false));
                        continue;
                    };
                    let mut found = false;
                    'outer: for a in ls {
                        let a = self.atomize_item(a);
                        for b in rs {
                            let b = self.atomize_item(b);
                            self.stats.join_pairs += 1;
                            if a.compare(*op, &b) {
                                found = true;
                                break 'outer;
                            }
                        }
                    }
                    out_items.push(Item::Bool(found));
                }
                let n = iters.len();
                Ok(seq_table(iters, vec![1; n], out_items))
            }
            Op::BoolAndOr {
                is_and,
                l,
                r,
                loop_,
            } => {
                let lt = self.eval(l)?;
                let rt = self.eval(r)?;
                let lf = self.per_iter_first(&lt)?;
                let rf = self.per_iter_first(&rt)?;
                let iters = self.loop_iters(loop_)?;
                let items: Vec<Item> = iters
                    .iter()
                    .map(|it| {
                        let a = lf.get(it).map(|v| v.effective_boolean()).unwrap_or(false);
                        let b = rf.get(it).map(|v| v.effective_boolean()).unwrap_or(false);
                        Item::Bool(if *is_and { a && b } else { a || b })
                    })
                    .collect();
                let n = iters.len();
                Ok(seq_table(iters, vec![1; n], items))
            }
            Op::BoolNot { e, loop_ } => {
                let t = self.eval(e)?;
                let groups = self.per_iter_items(&t)?;
                let iters = self.loop_iters(loop_)?;
                let items: Vec<Item> = iters
                    .iter()
                    .map(|it| Item::Bool(!ebv_of(groups.get(it))))
                    .collect();
                let n = iters.len();
                Ok(seq_table(iters, vec![1; n], items))
            }
            Op::Ebv { seq, loop_ } => {
                let t = self.eval(seq)?;
                let groups = self.per_iter_items(&t)?;
                let iters = self.loop_iters(loop_)?;
                let items: Vec<Item> = iters
                    .iter()
                    .map(|it| Item::Bool(ebv_of(groups.get(it))))
                    .collect();
                let n = iters.len();
                Ok(seq_table(iters, vec![1; n], items))
            }
            Op::Empty { seq, loop_ } => {
                let t = self.eval(seq)?;
                let groups = self.per_iter_items(&t)?;
                let iters = self.loop_iters(loop_)?;
                let items: Vec<Item> = iters
                    .iter()
                    .map(|it| Item::Bool(groups.get(it).map(|v| v.is_empty()).unwrap_or(true)))
                    .collect();
                let n = iters.len();
                Ok(seq_table(iters, vec![1; n], items))
            }
            Op::Aggregate { func, seq, loop_ } => self.eval_aggregate(*func, seq, loop_),
            Op::Atomize { seq } => {
                let t = self.eval(seq)?;
                // a dictionary-encoded item column holds only strings, which
                // are already atomic: pass it through unchanged so the codes
                // (and the shared dictionary) survive to a downstream join
                if t.column("item")?.dict_parts().is_some() {
                    return Ok((*t).clone());
                }
                let items: Vec<Item> = items_col(&t)?
                    .iter()
                    .map(|i| self.atomize_item(i))
                    .collect();
                Ok(seq_table(iter_col(&t)?, pos_col(&t)?, items))
            }
            Op::StringValue { seq, loop_ } => {
                let t = self.eval(seq)?;
                let firsts = self.per_iter_first(&t)?;
                let iters = self.loop_iters(loop_)?;
                let items: Vec<Item> = iters
                    .iter()
                    .map(|it| {
                        Item::str(
                            firsts
                                .get(it)
                                .map(|v| self.item_string(v))
                                .unwrap_or_default(),
                        )
                    })
                    .collect();
                let n = iters.len();
                Ok(seq_table(iters, vec![1; n], items))
            }
            Op::CastNumber { seq } => {
                let t = self.eval(seq)?;
                let items: Vec<Item> = items_col(&t)?
                    .iter()
                    .map(|i| Item::Dbl(self.atomize_item(i).as_number().unwrap_or(f64::NAN)))
                    .collect();
                Ok(seq_table(iter_col(&t)?, pos_col(&t)?, items))
            }
            Op::StringFn { kind, args, loop_ } => self.eval_string_fn(*kind, args, loop_),
            Op::NumFn { kind, arg } => {
                let t = self.eval(arg)?;
                let items: Vec<Item> = items_col(&t)?
                    .iter()
                    .map(|i| {
                        let v = self.atomize_item(i).as_number().unwrap_or(f64::NAN);
                        let r = match kind {
                            NumFnKind::Round => v.round(),
                            NumFnKind::Floor => v.floor(),
                            NumFnKind::Ceiling => v.ceil(),
                            NumFnKind::Abs => v.abs(),
                        };
                        Item::Dbl(r)
                    })
                    .collect();
                Ok(seq_table(iter_col(&t)?, pos_col(&t)?, items))
            }
            Op::DistinctValues { seq } => {
                let t = self.eval(seq)?;
                let sorted = self.sorted_seq(&t, seq)?;
                let iters = iter_col(&sorted)?;
                let items = items_col(&sorted)?;
                let mut seen: std::collections::HashSet<(i64, String)> =
                    std::collections::HashSet::new();
                let (mut oi, mut op, mut oit) = (Vec::new(), Vec::new(), Vec::new());
                let mut per_iter_count: HashMap<i64, i64> = HashMap::new();
                for i in 0..sorted.nrows() {
                    let key = (iters[i], self.item_string(&items[i]));
                    if seen.insert(key) {
                        let c = per_iter_count.entry(iters[i]).or_insert(0);
                        *c += 1;
                        oi.push(iters[i]);
                        op.push(*c);
                        oit.push(self.atomize_item(&items[i]));
                    }
                }
                Ok(seq_table(oi, op, oit))
            }
            Op::DocOrderDistinct { seq } => {
                let t = self.eval(seq)?;
                let groups = self.per_iter_items(&t)?;
                let mut iters: Vec<i64> = groups.keys().copied().collect();
                iters.sort_unstable();
                let (mut oi, mut op, mut oit) = (Vec::new(), Vec::new(), Vec::new());
                for it in iters {
                    let mut nodes: Vec<Item> = groups[&it].clone();
                    nodes.sort_by(|a, b| a.total_cmp(b));
                    nodes.dedup_by(|a, b| a.total_cmp(b) == std::cmp::Ordering::Equal);
                    for (k, item) in nodes.into_iter().enumerate() {
                        oi.push(it);
                        op.push(k as i64 + 1);
                        oit.push(item);
                    }
                }
                self.stats.sorts += 1;
                Ok(seq_table(oi, op, oit))
            }
            Op::PosFilter { seq, kind } => {
                let t = self.eval(seq)?;
                let iters = iter_col(&t)?;
                let poss = pos_col(&t)?;
                let mask: Vec<bool> = match kind {
                    PosFilterKind::Eq(n) => poss.iter().map(|p| p == n).collect(),
                    PosFilterKind::Last => {
                        let mut max_pos: HashMap<i64, i64> = HashMap::new();
                        for i in 0..t.nrows() {
                            let e = max_pos.entry(iters[i]).or_insert(i64::MIN);
                            *e = (*e).max(poss[i]);
                        }
                        (0..t.nrows())
                            .map(|i| poss[i] == max_pos[&iters[i]])
                            .collect()
                    }
                };
                let filtered = t.filter(&mask)?;
                self.renumber_pos(&filtered)
            }
            Op::Subsequence { seq, start, len } => {
                let t = self.eval(seq)?;
                let poss = pos_col(&t)?;
                let end = len.map(|l| start + l);
                let mask: Vec<bool> = poss
                    .iter()
                    .map(|p| *p >= *start && end.map(|e| *p < e).unwrap_or(true))
                    .collect();
                let filtered = t.filter(&mask)?;
                self.renumber_pos(&filtered)
            }
            Op::ElemCtor {
                loop_,
                name,
                attrs,
                content,
            } => self.eval_elem_ctor(loop_, name, attrs, content),
        }
    }

    fn renumber_pos(&mut self, t: &Table) -> EResult<Table> {
        let iters = iter_col(t)?;
        let new_pos = if self.config.order_aware {
            // grpord: the rows of each iteration are already in pos order
            row_number_streaming_with(&iters, self.threads)
        } else {
            self.stats.sorts += 1;
            let keys = [
                (t.column("iter")?, SortOrder::Asc),
                (t.column("pos")?, SortOrder::Asc),
            ];
            let perm = sort_permutation_with(
                &keys.iter().map(|(c, o)| (*c, *o)).collect::<Vec<_>>(),
                self.threads,
            );
            let sorted = t.gather_with(&perm, self.threads);
            let iters_sorted = iter_col(&sorted)?;
            let pos = row_number_streaming_with(&iters_sorted, self.threads);
            let mut out = sorted;
            out.add_column("pos", Column::Int(pos))?;
            return Ok(out);
        };
        let mut out = t.clone();
        out.add_column("pos", Column::Int(new_pos))?;
        Ok(out)
    }

    // -------------------------------------------------------------------
    // nesting operators
    // -------------------------------------------------------------------

    fn eval_lift_through(&mut self, seq: &PlanRef, nest: &PlanRef) -> EResult<Table> {
        let s = self.eval(seq)?;
        let s = self.sorted_seq(&s, seq)?;
        let n = self.eval(nest)?;
        let s_iter = iter_col(&s)?;
        let s_pos = pos_col(&s)?;
        let s_items = items_col(&s)?;
        // index: outer iter -> row range in s (s sorted by iter)
        let mut index: HashMap<i64, Vec<usize>> = HashMap::new();
        for (row, it) in s_iter.iter().enumerate() {
            index.entry(*it).or_default().push(row);
        }
        let n_outer = n.column("outer")?.as_int()?;
        let n_inner = n.column("inner")?.as_int()?;
        let (mut oi, mut op, mut oit) = (Vec::new(), Vec::new(), Vec::new());
        for k in 0..n.nrows() {
            if let Some(rows) = index.get(&n_outer[k]) {
                for &r in rows {
                    oi.push(n_inner[k]);
                    op.push(s_pos[r]);
                    oit.push(s_items[r].clone());
                }
            }
        }
        Ok(seq_table(oi, op, oit))
    }

    fn eval_back_map(
        &mut self,
        body: &PlanRef,
        nest: &PlanRef,
        order_keys: &[(PlanRef, bool)],
    ) -> EResult<Table> {
        let b = self.eval(body)?;
        let n = self.eval(nest)?;
        let n_outer = n.column("outer")?.as_int()?;
        let n_inner = n.column("inner")?.as_int()?;
        // inner -> (outer, rank-of-inner)
        let mut map: HashMap<i64, i64> = HashMap::with_capacity(n.nrows());
        for k in 0..n.nrows() {
            map.insert(n_inner[k], n_outer[k]);
        }
        // order keys per inner iteration, major key first
        let mut key_maps: Vec<(HashMap<i64, Item>, bool)> = Vec::with_capacity(order_keys.len());
        for (k, descending) in order_keys {
            let kt = self.eval(k)?;
            key_maps.push((self.per_iter_first(&kt)?, *descending));
        }
        let b_iter = iter_col(&b)?;
        let b_pos = pos_col(&b)?;
        let b_items = items_col(&b)?;
        let mut rows: Vec<(i64, Vec<Item>, i64, i64, Item)> = Vec::with_capacity(b.nrows());
        for i in 0..b.nrows() {
            let Some(&outer) = map.get(&b_iter[i]) else {
                continue;
            };
            // a missing (empty-sequence) key sorts as the empty string —
            // the same default the naive interpreter uses, so the two
            // evaluators stay comparable under differential testing
            let keys: Vec<Item> = key_maps
                .iter()
                .map(|(m, _)| m.get(&b_iter[i]).cloned().unwrap_or_else(|| Item::str("")))
                .collect();
            rows.push((outer, keys, b_iter[i], b_pos[i], b_items[i].clone()));
        }
        let sorted_input =
            self.config.order_aware && key_maps.is_empty() && body.props.ord_iter_pos;
        if sorted_input {
            // inner iteration numbers are assigned in (outer, pos) order, so a
            // body sorted on [inner, pos] maps back already sorted on outer
            self.stats.sorts_avoided += 1;
        } else {
            self.stats.sorts += 1;
            let directions: Vec<bool> = key_maps.iter().map(|(_, d)| *d).collect();
            rows.sort_by(|a, b| {
                let mut ord = a.0.cmp(&b.0);
                for (i, desc) in directions.iter().enumerate() {
                    if ord != std::cmp::Ordering::Equal {
                        break;
                    }
                    let k = a.1[i].total_cmp(&b.1[i]);
                    ord = if *desc { k.reverse() } else { k };
                }
                ord.then(a.2.cmp(&b.2)).then(a.3.cmp(&b.3))
            });
        }
        let iters: Vec<i64> = rows.iter().map(|r| r.0).collect();
        let pos = row_number_streaming_with(&iters, self.threads);
        let items: Vec<Item> = rows.into_iter().map(|r| r.4).collect();
        Ok(seq_table(iters, pos, items))
    }

    fn eval_nest_from_join(
        &mut self,
        source: &PlanRef,
        outer_loop: &PlanRef,
        left: &PlanRef,
        right: &PlanRef,
        op: CmpOp,
        dict_join: bool,
    ) -> EResult<Table> {
        let src = self.eval(source)?;
        let src = self.sorted_seq(&src, source)?;
        let src_pos = pos_col(&src)?;
        let src_items = items_col(&src)?;
        let lt = self.eval(left)?;
        let rt = self.eval(right)?;
        let _ = self.loop_iters(outer_loop)?;

        let l_iter = iter_col(&lt)?;
        let r_iter = iter_col(&rt)?;

        // pairs of (outer iter, source row) with existential semantics
        let mut pairs: Vec<(i64, i64)> = Vec::new();
        if op.is_equality() {
            // radix-partitioned hash join straight over the stored item
            // columns (no re-materialisation); joins two dictionary-encoded
            // columns sharing a dictionary code-to-code.  The δ afterwards
            // works on the [iter1, iter2]-ordered output (Section 4.2,
            // Figure 8(a)).
            if dict_join {
                // the analyser proved both operands share one dictionary, so
                // this join runs code-to-code by construction
                self.stats.proven_dict_joins += 1;
            }
            let (li, ri) =
                radix_hash_join_with(lt.column("item")?, rt.column("item")?, self.threads);
            self.stats.join_pairs += li.len() as u64;
            for (a, b) in li.into_iter().zip(ri) {
                pairs.push((l_iter[a], r_iter[b]));
            }
        } else if self.config.existential_minmax {
            // push min/max aggregates below the theta join (Figure 8(b)):
            // for `l < r` it suffices to compare min(l) with max(r), etc.
            let reduce = |items: &[Item], iters: &[i64], take_min: bool| -> (Vec<i64>, Vec<Item>) {
                let mut best: HashMap<i64, Item> = HashMap::new();
                for (it, v) in iters.iter().zip(items) {
                    best.entry(*it)
                        .and_modify(|cur| {
                            let replace = if take_min {
                                v.total_cmp(cur) == std::cmp::Ordering::Less
                            } else {
                                v.total_cmp(cur) == std::cmp::Ordering::Greater
                            };
                            if replace {
                                *cur = v.clone();
                            }
                        })
                        .or_insert_with(|| v.clone());
                }
                let mut keys: Vec<i64> = best.keys().copied().collect();
                keys.sort_unstable();
                let vals = keys.iter().map(|k| best[k].clone()).collect();
                (keys, vals)
            };
            // keep the smallest left / largest right for `<`-like ops and the
            // reverse for `>`-like ops
            let left_min = matches!(op, CmpOp::Lt | CmpOp::Le);
            let (lk, lv) = reduce(&items_col(&lt)?, &l_iter, left_min);
            let (rk, rv) = reduce(&items_col(&rt)?, &r_iter, !left_min);
            let (li, ri) = theta_join_nested(&Column::from_items(lv), &Column::from_items(rv), op);
            self.stats.join_pairs += li.len() as u64;
            for (a, b) in li.into_iter().zip(ri) {
                pairs.push((lk[a], rk[b]));
            }
        } else {
            // plain theta join over all item pairs followed by δ (Figure 8(a))
            let (li, ri) = theta_join_nested(lt.column("item")?, rt.column("item")?, op);
            self.stats.join_pairs += li.len() as u64;
            for (a, b) in li.into_iter().zip(ri) {
                pairs.push((l_iter[a], r_iter[b]));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();

        // source position -> source row, so each pair is resolved with one
        // hash lookup instead of a linear scan over the source sequence
        let mut pos_index: HashMap<i64, usize> = HashMap::with_capacity(src_pos.len());
        for (idx, &p) in src_pos.iter().enumerate() {
            pos_index.entry(p).or_insert(idx);
        }
        let (mut outer, mut inner, mut pos, mut items) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for (k, (o, src_row)) in pairs.into_iter().enumerate() {
            let Some(&idx) = pos_index.get(&src_row) else {
                continue;
            };
            outer.push(o);
            inner.push(k as i64 + 1);
            pos.push(src_row);
            items.push(src_items[idx].clone());
        }
        Table::from_columns(vec![
            ("outer", Column::Int(outer)),
            ("inner", Column::Int(inner)),
            ("pos", Column::Int(pos)),
            ("item", Column::from_items(items)),
        ])
        .map_err(Into::into)
    }

    fn eval_union(&mut self, parts: &[PlanRef]) -> EResult<Table> {
        let mut rows: Vec<(i64, i64, i64, Item)> = Vec::new();
        for (pidx, p) in parts.iter().enumerate() {
            let t = self.eval(p)?;
            let iters = iter_col(&t)?;
            let poss = pos_col(&t)?;
            let items = items_col(&t)?;
            for i in 0..t.nrows() {
                rows.push((iters[i], pidx as i64, poss[i], items[i].clone()));
            }
        }
        self.stats.sorts += 1;
        rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let iters: Vec<i64> = rows.iter().map(|r| r.0).collect();
        let pos = row_number_streaming_with(&iters, self.threads);
        let items: Vec<Item> = rows.into_iter().map(|r| r.3).collect();
        Ok(seq_table(iters, pos, items))
    }

    // -------------------------------------------------------------------
    // axis steps
    // -------------------------------------------------------------------

    fn eval_axis_step(&mut self, ctx: &PlanRef, axis: Axis, test: &NodeTest) -> EResult<Table> {
        let t = self.eval(ctx)?;
        let iters = iter_col(&t)?;
        let items = items_col(&t)?;
        // group context nodes per document container (fragment)
        let mut per_frag: HashMap<u32, Vec<(i64, u32)>> = HashMap::new();
        for (it, item) in iters.iter().zip(&items) {
            if let Item::Node(n) = item {
                per_frag.entry(n.frag).or_default().push((*it, n.pre));
            }
        }
        let mut out: Vec<(i64, NodeId)> = Vec::new();
        let mut stats = ScanStats::default();
        let config = self.config;
        for (frag, mut pairs) in per_frag {
            pairs.sort_unstable_by_key(|&(it, p)| (p, it));
            // dispatch once per container so the scan loops monomorphize
            // over the concrete representation (flat vs. page-backed)
            let results: Vec<(i64, u32)> = match self.container(frag) {
                ContainerRef::Doc(d) => axis_step_on(d, &pairs, axis, test, &config, &mut stats),
                ContainerRef::Paged(p) => axis_step_on(p, &pairs, axis, test, &config, &mut stats),
            };
            for (it, pre) in results {
                out.push((it, NodeId::new(frag, pre)));
            }
        }
        self.stats.staircase.merge(&stats);
        // order by (iter, document order) and assign positions
        self.stats.sorts += 1;
        out.sort_unstable_by_key(|&(it, n)| (it, n));
        let iters: Vec<i64> = out.iter().map(|r| r.0).collect();
        let pos = row_number_streaming_with(&iters, self.threads);
        let items: Vec<Item> = out.into_iter().map(|r| Item::Node(r.1)).collect();
        Ok(seq_table(iters, pos, items))
    }

    fn eval_attr_step(&mut self, ctx: &PlanRef, name: Option<&str>) -> EResult<Table> {
        let t = self.eval(ctx)?;
        let sorted = self.sorted_seq(&t, ctx)?;
        let iters = iter_col(&sorted)?;
        let items = items_col(&sorted)?;

        // Dictionary fast path: when every context node lives in one paged
        // container, the attribute values are already codes into the
        // container's shared value dictionary — emit a `Column::Dict` item
        // column so an equi-join against another attribute column of the
        // same document runs code-to-code.
        let mut frags = items.iter().filter_map(|i| match i {
            Item::Node(n) => Some(n.frag),
            _ => None,
        });
        let single_frag = frags.next().filter(|&f| frags.all(|g| g == f));
        if let Some(frag) = single_frag {
            if frag != TRANSIENT_FRAG {
                if let ContainerRef::Paged(p) = self.container(frag) {
                    let cols = p.columns_arc();
                    let (mut oi, mut codes) = (Vec::new(), Vec::new());
                    for (it, item) in iters.iter().zip(&items) {
                        let Item::Node(n) = item else { continue };
                        match name {
                            Some(a) => {
                                if let Some(c) = cols.attr_value_code_of(n.pre, a) {
                                    oi.push(*it);
                                    codes.push(c);
                                }
                            }
                            None => {
                                for &c in cols.attr_value_codes_of(n.pre) {
                                    oi.push(*it);
                                    codes.push(c);
                                }
                            }
                        }
                    }
                    let pos = row_number_streaming_with(&oi, self.threads);
                    let item = Column::Dict {
                        codes,
                        dict: cols.attr_values().clone(),
                    };
                    return Ok(Table::from_columns(vec![
                        ("iter", Column::Int(oi)),
                        ("pos", Column::Int(pos)),
                        ("item", item),
                    ])
                    .expect("sequence table construction"));
                }
            }
        }

        let (mut oi, mut oit) = (Vec::new(), Vec::new());
        for (it, item) in iters.iter().zip(&items) {
            let Item::Node(n) = item else { continue };
            let doc = self.container(n.frag);
            match name {
                Some(a) => {
                    if let Some(v) = doc.attribute(n.pre, a) {
                        oi.push(*it);
                        oit.push(Item::str(v));
                    }
                }
                None => {
                    for (_, value) in doc.attrs(n.pre) {
                        oi.push(*it);
                        oit.push(Item::str(value.as_ref()));
                    }
                }
            }
        }
        let pos = row_number_streaming_with(&oi, self.threads);
        Ok(seq_table(oi, pos, oit))
    }

    // -------------------------------------------------------------------
    // scalar / aggregate operators
    // -------------------------------------------------------------------

    fn eval_arith(&mut self, op: ArithOp, l: &PlanRef, r: &PlanRef) -> EResult<Table> {
        let lt = self.eval(l)?;
        let rt = self.eval(r)?;
        let lf = self.per_iter_first(&lt)?;
        let rf = self.per_iter_first(&rt)?;
        let mut iters: Vec<i64> = lf.keys().filter(|k| rf.contains_key(k)).copied().collect();
        iters.sort_unstable();
        let mut items = Vec::with_capacity(iters.len());
        for it in &iters {
            let a = self.atomize_item(&lf[it]).as_number().unwrap_or(f64::NAN);
            let b = self.atomize_item(&rf[it]).as_number().unwrap_or(f64::NAN);
            let both_int = matches!(lf[it], Item::Int(_)) && matches!(rf[it], Item::Int(_));
            let v = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => a / b,
                ArithOp::IDiv => (a / b).trunc(),
                ArithOp::Mod => a % b,
            };
            let keep_int = both_int
                && matches!(
                    op,
                    ArithOp::Add | ArithOp::Sub | ArithOp::Mul | ArithOp::IDiv | ArithOp::Mod
                );
            items.push(if keep_int {
                Item::Int(v as i64)
            } else {
                Item::Dbl(v)
            });
        }
        let n = iters.len();
        Ok(seq_table(iters, vec![1; n], items))
    }

    fn eval_aggregate(&mut self, func: AggFunc, seq: &PlanRef, loop_: &PlanRef) -> EResult<Table> {
        let t = self.eval(seq)?;
        let loop_iters = self.loop_iters(loop_)?;
        let iters = iter_col(&t)?;
        let items_column = Column::from_items(
            items_col(&t)?
                .iter()
                .map(|i| self.atomize_item(i))
                .collect(),
        );
        let agg = if self.config.order_aware && seq.props.grpord_pos && is_sorted(&iters) {
            self.stats.sorts_avoided += 1;
            aggregate_grouped_with(&iters, &items_column, func, self.threads)
        } else {
            aggregate_hash(&iters, &items_column, func)
        }
        .map_err(ExecError::Engine)?;
        let found: HashMap<i64, Item> = agg.groups.into_iter().zip(agg.values).collect();
        let (mut oi, mut oit) = (Vec::new(), Vec::new());
        for it in loop_iters {
            match found.get(&it) {
                Some(v) => {
                    oi.push(it);
                    oit.push(v.clone());
                }
                None => match func {
                    AggFunc::Count => {
                        oi.push(it);
                        oit.push(Item::Int(0));
                    }
                    AggFunc::Sum => {
                        oi.push(it);
                        oit.push(Item::Int(0));
                    }
                    // min/max/avg over the empty sequence yield the empty sequence
                    _ => {}
                },
            }
        }
        let n = oi.len();
        Ok(seq_table(oi, vec![1; n], oit))
    }

    fn eval_string_fn(
        &mut self,
        kind: StrFnKind,
        args: &[PlanRef],
        loop_: &PlanRef,
    ) -> EResult<Table> {
        let loop_iters = self.loop_iters(loop_)?;
        // first string per iteration, per argument
        let mut arg_strings: Vec<HashMap<i64, String>> = Vec::new();
        let mut arg_all: Vec<HashMap<i64, Vec<Item>>> = Vec::new();
        for a in args {
            let t = self.eval(a)?;
            let firsts = self.per_iter_first(&t)?;
            arg_strings.push(
                firsts
                    .iter()
                    .map(|(k, v)| (*k, self.item_string(v)))
                    .collect(),
            );
            arg_all.push(self.per_iter_items(&t)?);
        }
        let get = |idx: usize, it: i64, arg_strings: &Vec<HashMap<i64, String>>| -> String {
            arg_strings
                .get(idx)
                .and_then(|m| m.get(&it))
                .cloned()
                .unwrap_or_default()
        };
        let (mut oi, mut oit) = (Vec::new(), Vec::new());
        for it in loop_iters {
            let result = match kind {
                StrFnKind::Contains => {
                    Item::Bool(get(0, it, &arg_strings).contains(&get(1, it, &arg_strings)))
                }
                StrFnKind::StartsWith => {
                    Item::Bool(get(0, it, &arg_strings).starts_with(&get(1, it, &arg_strings)))
                }
                StrFnKind::EndsWith => {
                    Item::Bool(get(0, it, &arg_strings).ends_with(&get(1, it, &arg_strings)))
                }
                StrFnKind::Concat => {
                    let mut s = String::new();
                    for idx in 0..args.len() {
                        s.push_str(&get(idx, it, &arg_strings));
                    }
                    Item::str(s)
                }
                StrFnKind::StringLength => {
                    Item::Int(get(0, it, &arg_strings).chars().count() as i64)
                }
                StrFnKind::Substring => {
                    let s = get(0, it, &arg_strings);
                    let start = get(1, it, &arg_strings)
                        .parse::<f64>()
                        .unwrap_or(1.0)
                        .round() as i64;
                    let len = if args.len() > 2 {
                        Some(
                            get(2, it, &arg_strings)
                                .parse::<f64>()
                                .unwrap_or(0.0)
                                .round() as i64,
                        )
                    } else {
                        None
                    };
                    let chars: Vec<char> = s.chars().collect();
                    let from = (start.max(1) - 1) as usize;
                    let to = match len {
                        Some(l) => ((start - 1 + l).max(0) as usize).min(chars.len()),
                        None => chars.len(),
                    };
                    Item::str(chars[from.min(chars.len())..to].iter().collect::<String>())
                }
                StrFnKind::StringJoin => {
                    let sep = get(1, it, &arg_strings);
                    let parts: Vec<String> = arg_all
                        .first()
                        .and_then(|m| m.get(&it))
                        .map(|v| v.iter().map(|i| self.item_string(i)).collect())
                        .unwrap_or_default();
                    Item::str(parts.join(&sep))
                }
                StrFnKind::UpperCase => Item::str(get(0, it, &arg_strings).to_uppercase()),
                StrFnKind::LowerCase => Item::str(get(0, it, &arg_strings).to_lowercase()),
                StrFnKind::NormalizeSpace => Item::str(
                    get(0, it, &arg_strings)
                        .split_whitespace()
                        .collect::<Vec<_>>()
                        .join(" "),
                ),
                StrFnKind::Translate => {
                    let s = get(0, it, &arg_strings);
                    let from: Vec<char> = get(1, it, &arg_strings).chars().collect();
                    let to: Vec<char> = get(2, it, &arg_strings).chars().collect();
                    let out: String = s
                        .chars()
                        .filter_map(|c| match from.iter().position(|f| *f == c) {
                            Some(i) => to.get(i).copied(),
                            None => Some(c),
                        })
                        .collect();
                    Item::str(out)
                }
                StrFnKind::NodeName => {
                    let name = arg_all
                        .first()
                        .and_then(|m| m.get(&it))
                        .and_then(|v| v.first())
                        .and_then(|i| i.as_node())
                        .map(|n| self.container(n.frag).name_of(n.pre).to_string())
                        .unwrap_or_default();
                    Item::str(name)
                }
            };
            oi.push(it);
            oit.push(result);
        }
        let n = oi.len();
        Ok(seq_table(oi, vec![1; n], oit))
    }

    // -------------------------------------------------------------------
    // element construction
    // -------------------------------------------------------------------

    fn eval_elem_ctor(
        &mut self,
        loop_: &PlanRef,
        name: &str,
        attrs: &[(String, PlanRef)],
        content: &[PlanRef],
    ) -> EResult<Table> {
        let loop_iters = self.loop_iters(loop_)?;
        let mut attr_values: Vec<(String, HashMap<i64, Item>)> = Vec::new();
        for (aname, plan) in attrs {
            let t = self.eval(plan)?;
            attr_values.push((aname.clone(), self.per_iter_first(&t)?));
        }
        let mut content_groups: Vec<HashMap<i64, Vec<Item>>> = Vec::new();
        for c in content {
            let t = self.eval(c)?;
            content_groups.push(self.per_iter_items(&t)?);
        }

        // Snapshot of the transient container: content nodes constructed by
        // child plans already live there and must be copied from a stable
        // source while we append the new elements.
        let transient = std::mem::take(&mut self.transient);
        let snapshot = transient.clone();
        let mut builder = DocumentBuilder::append_to(transient, 0);

        let (mut oi, mut oit) = (Vec::new(), Vec::new());
        for it in loop_iters {
            let root_pre = builder.start_element(name);
            for (aname, values) in &attr_values {
                let v = values
                    .get(&it)
                    .map(|i| self.item_string(i))
                    .unwrap_or_default();
                builder.attribute(aname, &v);
            }
            let mut pending_text = String::new();
            for group in &content_groups {
                let Some(items) = group.get(&it) else {
                    continue;
                };
                for item in items {
                    match item {
                        Item::Node(n) => {
                            if !pending_text.is_empty() {
                                builder.text(&pending_text);
                                pending_text.clear();
                            }
                            if n.frag == TRANSIENT_FRAG {
                                builder.copy_subtree(&snapshot, n.pre);
                            } else {
                                self.record_read(n.frag);
                                builder.copy_subtree(&self.snap.container(n.frag), n.pre);
                            }
                        }
                        atomic => {
                            if !pending_text.is_empty() {
                                pending_text.push(' ');
                            }
                            pending_text.push_str(&atomic.string_value());
                        }
                    }
                }
            }
            if !pending_text.is_empty() {
                builder.text(&pending_text);
            }
            builder.end_element();
            self.stats.constructed_nodes += 1;
            oi.push(it);
            oit.push(Item::Node(NodeId::new(TRANSIENT_FRAG, root_pre)));
        }
        self.transient = builder.finish();
        let n = oi.len();
        Ok(seq_table(oi, vec![1; n], oit))
    }
}

/// One location step over one container: picks the candidate-pushdown,
/// loop-lifted or iterative staircase variant according to the config.
/// Generic so the scan loops specialize per storage representation.
fn axis_step_on<D: NodeRead>(
    doc: &D,
    pairs: &[(i64, u32)],
    axis: Axis,
    test: &NodeTest,
    config: &ExecConfig,
    stats: &mut ScanStats,
) -> Vec<(i64, u32)> {
    let loop_lifted = match axis {
        Axis::Child => config.loop_lifted_child,
        Axis::Descendant | Axis::DescendantOrSelf => config.loop_lifted_descendant,
        _ => true,
    };
    let use_candidates = config.nametest_pushdown
        && matches!(test, NodeTest::Named(_))
        && matches!(
            axis,
            Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
        );
    if use_candidates {
        let candidates = match test {
            NodeTest::Named(name) => doc.named_elements(name),
            _ => unreachable!(),
        };
        if let Some(candidates) = candidates {
            return looplifted_step_candidates(doc, pairs, axis, &candidates, stats);
        }
    }
    if loop_lifted {
        looplifted_step(doc, pairs, axis, test, stats)
    } else {
        // iterative: one staircase join invocation (and document scan)
        // per iteration — the baseline of Figure 12
        let mut by_iter: HashMap<i64, Vec<u32>> = HashMap::new();
        for (it, p) in pairs {
            by_iter.entry(*it).or_default().push(*p);
        }
        let mut res = Vec::new();
        let mut its: Vec<i64> = by_iter.keys().copied().collect();
        its.sort_unstable();
        for it in its {
            for p in staircase_step(doc, &by_iter[&it], axis, test, stats) {
                res.push((it, p));
            }
        }
        res
    }
}

fn ebv_of(items: Option<&Vec<Item>>) -> bool {
    match items {
        None => false,
        Some(v) if v.is_empty() => false,
        Some(v) => {
            if v.iter().any(|i| i.is_node()) {
                true
            } else if v.len() == 1 {
                v[0].effective_boolean()
            } else {
                true
            }
        }
    }
}

fn is_sorted(v: &[i64]) -> bool {
    v.windows(2).all(|w| w[0] <= w[1])
}

/// Format a sequence of result items the way our serializer does for
/// examples/tests: nodes as XML, atomics as their string value, separated by
/// single spaces between adjacent atomics.  `container_of` resolves a
/// fragment id to its container; node items render straight from the
/// paged store (pages are read on demand).
fn serialize_items_by<'d, F>(container_of: F, items: &[Item]) -> String
where
    F: Fn(u32) -> ContainerRef<'d>,
{
    let mut out = String::new();
    let mut prev_atomic = false;
    for item in items {
        match item {
            Item::Node(n) => {
                let doc = container_of(n.frag);
                mxq_xmldb::serialize_node(&doc, n.pre, &mut out);
                prev_atomic = false;
            }
            Item::Dbl(d) => {
                if prev_atomic {
                    out.push(' ');
                }
                out.push_str(&format_double(*d));
                prev_atomic = true;
            }
            atomic => {
                if prev_atomic {
                    out.push(' ');
                }
                out.push_str(&atomic.string_value());
                prev_atomic = true;
            }
        }
    }
    out
}

/// Serialize a result sequence against a document store (nodes in the
/// store's transient container resolve against fragment 0 of the store).
pub fn serialize_items(store: &DocStore, items: &[Item]) -> String {
    serialize_items_by(|frag| store.container(frag), items)
}

/// Serialize a result sequence against a store snapshot plus the private
/// transient container of the execution that produced the items.
pub fn serialize_items_snapshot(
    snap: &StoreSnapshot,
    transient: &Document,
    items: &[Item],
) -> String {
    serialize_items_by(
        |frag| {
            if frag == TRANSIENT_FRAG {
                ContainerRef::Doc(transient)
            } else {
                snap.container(frag)
            }
        },
        items,
    )
}

/// Serialize a single item (see [`serialize_items_snapshot`]).
pub fn serialize_item_snapshot(snap: &StoreSnapshot, transient: &Document, item: &Item) -> String {
    serialize_items_snapshot(snap, transient, std::slice::from_ref(item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ebv_rules() {
        assert!(!ebv_of(None));
        assert!(!ebv_of(Some(&vec![])));
        assert!(ebv_of(Some(&vec![Item::Node(NodeId::new(0, 1))])));
        assert!(!ebv_of(Some(&vec![Item::Bool(false)])));
        assert!(ebv_of(Some(&vec![Item::Int(3)])));
    }

    #[test]
    fn serialize_items_spaces_atomics() {
        let store = DocStore::new();
        let s = serialize_items(&store, &[Item::Int(1), Item::Int(2), Item::str("x")]);
        assert_eq!(s, "1 2 x");
    }
}
