//! End-to-end tests of the XQuery Update Facility surface: statements parsed
//! from text mutate the paged store, and subsequent queries observe the
//! post-update state.

use mxq_xquery::{Database, Error, ExecConfig, PulError, Session};
use std::sync::Arc;

fn engine_with(xml: &str) -> Session {
    let db = Arc::new(Database::new());
    db.load_document("doc.xml", xml).unwrap();
    db.session()
}

fn run(e: &mut Session, q: &str) -> String {
    e.query(q).unwrap().serialize().to_string()
}

#[test]
fn insert_nodes_as_last_into() {
    let mut e = engine_with("<site><items><item>a</item></items></site>");
    let rep = e
        .execute_update("insert nodes <item>b</item> as last into doc(\"doc.xml\")/site/items")
        .unwrap();
    assert_eq!(rep.statements, 1);
    assert_eq!(rep.primitives, 1);
    assert_eq!(rep.documents_touched, 1);
    assert_eq!(
        run(&mut e, "doc(\"doc.xml\")/site/items"),
        "<items><item>a</item><item>b</item></items>"
    );
    assert_eq!(run(&mut e, "count(doc(\"doc.xml\")//item)"), "2");
}

#[test]
fn insert_positions() {
    let mut e = engine_with("<r><a/><b/></r>");
    e.execute_update("insert nodes <first/> as first into doc(\"doc.xml\")/r")
        .unwrap();
    e.execute_update("insert nodes <x/> before doc(\"doc.xml\")/r/b")
        .unwrap();
    e.execute_update("insert nodes <y/> after doc(\"doc.xml\")/r/b")
        .unwrap();
    e.execute_update("insert nodes <plain/> into doc(\"doc.xml\")/r")
        .unwrap();
    assert_eq!(
        run(&mut e, "doc(\"doc.xml\")/r"),
        "<r><first/><a/><x/><b/><y/><plain/></r>"
    );
}

#[test]
fn delete_nodes_accepts_sequences() {
    let mut e = engine_with("<r><k/><v>1</v><k/><v>2</v></r>");
    let rep = e
        .execute_update("delete nodes doc(\"doc.xml\")/r/k")
        .unwrap();
    assert_eq!(rep.primitives, 2);
    assert_eq!(run(&mut e, "doc(\"doc.xml\")/r"), "<r><v>1</v><v>2</v></r>");
    // deleting an empty sequence is a no-op, not an error
    let rep = e
        .execute_update("delete nodes doc(\"doc.xml\")/r/missing")
        .unwrap();
    assert_eq!(rep.primitives, 0);
}

#[test]
fn replace_node_and_value() {
    let mut e = engine_with("<r><old><deep/></old><keep/></r>");
    e.execute_update("replace node doc(\"doc.xml\")/r/old with <new>n</new>")
        .unwrap();
    assert_eq!(
        run(&mut e, "doc(\"doc.xml\")/r"),
        "<r><new>n</new><keep/></r>"
    );
    e.execute_update("replace value of node doc(\"doc.xml\")/r/new with \"altered\"")
        .unwrap();
    assert_eq!(run(&mut e, "doc(\"doc.xml\")/r/new/text()"), "altered");
}

#[test]
fn rename_node_updates_queries() {
    let mut e = engine_with("<r><x>v</x></r>");
    e.execute_update("rename node doc(\"doc.xml\")/r/x as \"y\"")
        .unwrap();
    assert_eq!(run(&mut e, "count(doc(\"doc.xml\")/r/x)"), "0");
    assert_eq!(run(&mut e, "doc(\"doc.xml\")/r/y/text()"), "v");
}

#[test]
fn attribute_updates() {
    let mut e = engine_with("<r><i id=\"1\" drop=\"x\"/></r>");
    e.execute_update("replace value of node doc(\"doc.xml\")/r/i/@id with \"2\"")
        .unwrap();
    e.execute_update("delete nodes doc(\"doc.xml\")/r/i/@drop")
        .unwrap();
    e.execute_update("rename node doc(\"doc.xml\")/r/i/@id as \"key\"")
        .unwrap();
    assert_eq!(run(&mut e, "doc(\"doc.xml\")/r/i"), "<i key=\"2\"/>");
    // setting a fresh attribute through replace value of a missing @name
    // (the subset's attribute-insertion form — documented extension)
    e.execute_update("replace value of node doc(\"doc.xml\")/r/i/@lang with \"en\"")
        .unwrap();
    assert_eq!(run(&mut e, "doc(\"doc.xml\")/r/i/@lang"), "en");
    // renaming a missing attribute is an empty target — an error
    assert!(matches!(
        e.execute_update("rename node doc(\"doc.xml\")/r/i/@missing as \"m\""),
        Err(Error::Update(PulError::ExactlyOne { got: 0, .. }))
    ));
}

#[test]
fn attribute_updates_are_statement_order_independent() {
    // rename @k + replace value of @k in one snapshot: both orders converge
    // on the renamed attribute carrying the new value
    for stmts in [
        "rename node doc(\"doc.xml\")/a/@k as \"j\", \
         replace value of node doc(\"doc.xml\")/a/@k with \"9\"",
        "replace value of node doc(\"doc.xml\")/a/@k with \"9\", \
         rename node doc(\"doc.xml\")/a/@k as \"j\"",
    ] {
        let mut e = engine_with("<a k=\"old\"/>");
        e.execute_update(stmts).unwrap();
        assert_eq!(run(&mut e, "doc(\"doc.xml\")/a"), "<a j=\"9\"/>", "{stmts}");
    }
    // delete @k + replace value of @k: the delete applies last — gone
    for stmts in [
        "delete nodes doc(\"doc.xml\")/a/@k, \
         replace value of node doc(\"doc.xml\")/a/@k with \"9\"",
        "replace value of node doc(\"doc.xml\")/a/@k with \"9\", \
         delete nodes doc(\"doc.xml\")/a/@k",
    ] {
        let mut e = engine_with("<a k=\"old\"/>");
        e.execute_update(stmts).unwrap();
        assert_eq!(run(&mut e, "doc(\"doc.xml\")/a"), "<a/>", "{stmts}");
    }
    // rename @k + delete @k: the delete follows the rename — gone either way
    for stmts in [
        "rename node doc(\"doc.xml\")/a/@k as \"j\", \
         delete nodes doc(\"doc.xml\")/a/@k",
        "delete nodes doc(\"doc.xml\")/a/@k, \
         rename node doc(\"doc.xml\")/a/@k as \"j\"",
    ] {
        let mut e = engine_with("<a k=\"old\"/>");
        e.execute_update(stmts).unwrap();
        assert_eq!(run(&mut e, "doc(\"doc.xml\")/a"), "<a/>", "{stmts}");
    }
}

#[test]
fn tied_insert_positions_keep_their_levels() {
    // <p/> is empty, so "first child of p" and "before s" share the numeric
    // position; the shallower insert must not capture the deeper content
    for stmts in [
        "insert nodes <x/> as first into doc(\"doc.xml\")/a/p, \
         insert nodes <y/> before doc(\"doc.xml\")/a/s",
        "insert nodes <y/> before doc(\"doc.xml\")/a/s, \
         insert nodes <x/> as first into doc(\"doc.xml\")/a/p",
    ] {
        let mut e = engine_with("<a><p/><s/></a>");
        e.execute_update(stmts).unwrap();
        assert_eq!(
            run(&mut e, "doc(\"doc.xml\")/a"),
            "<a><p><x/></p><y/><s/></a>",
            "{stmts}"
        );
    }
    // same shape with "as last into" and "after"
    for stmts in [
        "insert nodes <x/> as last into doc(\"doc.xml\")/a/p, \
         insert nodes <y/> after doc(\"doc.xml\")/a/p",
        "insert nodes <y/> after doc(\"doc.xml\")/a/p, \
         insert nodes <x/> as last into doc(\"doc.xml\")/a/p",
    ] {
        let mut e = engine_with("<a><p/><s/></a>");
        e.execute_update(stmts).unwrap();
        assert_eq!(
            run(&mut e, "doc(\"doc.xml\")/a"),
            "<a><p><x/></p><y/><s/></a>",
            "{stmts}"
        );
    }
}

#[test]
fn failed_updates_do_not_leak_transient_nodes() {
    let mut e = engine_with("<r><x/></r>");
    let before = e.database().store().total_nodes();
    // the source constructor is evaluated, then collection fails (two targets)
    for _ in 0..5 {
        assert!(e
            .execute_update("insert nodes <big><a/><b/><c/></big> into doc(\"doc.xml\")/r/missing")
            .is_err());
    }
    assert_eq!(
        e.database().store().total_nodes(),
        before,
        "failed updates must not accumulate constructed nodes"
    );
}

#[test]
fn bulk_attribute_delete() {
    let mut e = engine_with("<a><b k=\"1\"/><b k=\"2\"/><b/></a>");
    let rep = e
        .execute_update("delete nodes doc(\"doc.xml\")/a/b/@k")
        .unwrap();
    assert_eq!(rep.primitives, 3, "one remove per owning element");
    assert_eq!(run(&mut e, "doc(\"doc.xml\")/a"), "<a><b/><b/><b/></a>");
}

#[test]
fn multi_statement_snapshot_semantics() {
    // both statements see the same snapshot: the second targets <b>, which
    // the first deletes — the insert must still land where <b> was
    let mut e = engine_with("<r><a/><b/><c/></r>");
    e.execute_update(
        "delete nodes doc(\"doc.xml\")/r/b, \
         insert nodes <n/> before doc(\"doc.xml\")/r/b",
    )
    .unwrap();
    assert_eq!(run(&mut e, "doc(\"doc.xml\")/r"), "<r><a/><n/><c/></r>");
}

#[test]
fn conflicting_statements_are_atomic() {
    let mut e = engine_with("<r><x/></r>");
    let err = e
        .execute_update(
            "rename node doc(\"doc.xml\")/r/x as \"a\", \
             rename node doc(\"doc.xml\")/r/x as \"b\"",
        )
        .unwrap_err();
    assert!(matches!(err, Error::Update(PulError::Conflict { .. })));
    // nothing was applied
    assert_eq!(run(&mut e, "doc(\"doc.xml\")/r"), "<r><x/></r>");
}

#[test]
fn update_errors() {
    let mut e = engine_with("<r><a/><a/></r>");
    // exactly-one violations
    assert!(matches!(
        e.execute_update("insert nodes <x/> into doc(\"doc.xml\")/r/a"),
        Err(Error::Update(PulError::ExactlyOne { .. }))
    ));
    // structural updates of the root are rejected
    assert!(matches!(
        e.execute_update("delete nodes doc(\"doc.xml\")"),
        Err(Error::Update(PulError::TargetIsRoot))
    ));
    // non-node targets
    assert!(matches!(
        e.execute_update("delete nodes \"str\""),
        Err(Error::Update(PulError::NotANode(_)))
    ));
    // invalid rename
    assert!(matches!(
        e.execute_update("rename node doc(\"doc.xml\")/r/a[1] as \"not a name\""),
        Err(Error::Update(PulError::InvalidName(_)))
    ));
    // rename of a text node
    assert!(matches!(
        e.execute_update("rename node doc(\"doc.xml\")/r/a[1]/text() as \"t\""),
        Err(Error::Update(PulError::ExactlyOne { .. }))
    ));
    // unknown document
    assert!(matches!(
        e.execute_update("delete nodes doc(\"missing.xml\")/r"),
        Err(Error::Exec(_))
    ));
    // parse error
    assert!(matches!(
        e.execute_update("insert nodes <x/>"),
        Err(Error::Parse(_))
    ));
}

#[test]
fn inserted_content_is_a_snapshot_copy() {
    // inserting a node from the same document copies it: later mutations of
    // the original leave the copy untouched
    let mut e = engine_with("<r><src><leaf/></src><dst/></r>");
    e.execute_update("insert nodes doc(\"doc.xml\")/r/src as last into doc(\"doc.xml\")/r/dst")
        .unwrap();
    e.execute_update("delete nodes doc(\"doc.xml\")/r/src[1]")
        .unwrap();
    assert_eq!(
        run(&mut e, "doc(\"doc.xml\")/r"),
        "<r><dst><src><leaf/></src></dst></r>"
    );
}

#[test]
fn computed_content_through_flwor() {
    let mut e = engine_with("<r><v>1</v><v>2</v><dst/></r>");
    e.execute_update(
        "insert nodes (for $v in doc(\"doc.xml\")/r/v return <w>{$v/text()}</w>) \
         as last into doc(\"doc.xml\")/r/dst",
    )
    .unwrap();
    assert_eq!(
        run(&mut e, "doc(\"doc.xml\")/r/dst"),
        "<dst><w>1</w><w>2</w></dst>"
    );
}

#[test]
fn atomic_content_becomes_text() {
    let mut e = engine_with("<r><dst/></r>");
    e.execute_update("insert nodes (1, 2, \"x\") as last into doc(\"doc.xml\")/r/dst")
        .unwrap();
    assert_eq!(run(&mut e, "doc(\"doc.xml\")/r/dst"), "<dst>1 2 x</dst>");
}

#[test]
fn document_columns_refresh_after_update() {
    let mut e = engine_with("<r><a/></r>");
    let before = e.database().document_columns("doc.xml").unwrap();
    assert!(before.tags().code_of("brandnew").is_none());
    e.execute_update("insert nodes <brandnew/> as last into doc(\"doc.xml\")/r")
        .unwrap();
    let after = e.database().document_columns("doc.xml").unwrap();
    assert!(
        after.tags().code_of("brandnew").is_some(),
        "tag dictionary must be refreshed after the update"
    );
    assert_eq!(after.structural().nrows(), before.structural().nrows() + 1);
    // the cache returns the same export until the next update
    let again = e.database().document_columns("doc.xml").unwrap();
    assert!(std::sync::Arc::ptr_eq(&after, &again));
}

#[test]
fn updates_visible_under_all_configs() {
    for config in [ExecConfig::default(), ExecConfig::naive()] {
        let db = Arc::new(Database::new());
        db.load_document("doc.xml", "<r><a>1</a></r>").unwrap();
        let mut e = db.session_with_config(config);
        e.execute_update("insert nodes <a>2</a> as last into doc(\"doc.xml\")/r")
            .unwrap();
        assert_eq!(run(&mut e, "count(doc(\"doc.xml\")/r/a)"), "2");
    }
}

#[test]
fn update_report_counts_paged_costs() {
    let mut e = engine_with("<r><a/></r>");
    let rep = e
        .execute_update("insert nodes <b/> as last into doc(\"doc.xml\")/r")
        .unwrap();
    assert!(rep.stats.tuples_written >= 1);
    assert!(rep.stats.pages_touched >= 1);
    assert_eq!(rep.stats.fill_percent, mxq_xquery::DEFAULT_FILL_PERCENT);
}
