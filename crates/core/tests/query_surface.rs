//! Behavioural tests of the XQuery surface: one small document, many
//! queries, exact expected serializations.  These pin down the semantics the
//! compiler + executor implement (sequence order, existential comparisons,
//! effective boolean values, constructors, axes, functions).

use mxq_xquery::{Database, Error, ExecConfig, Session};
use std::sync::Arc;

const DOC: &str = r#"<shop>
  <staff><employee id="e1" dept="sales"><name>Ann</name><salary>50000</salary></employee>
         <employee id="e2" dept="it"><name>Bob</name><salary>65000</salary></employee>
         <employee id="e3" dept="sales"><name>Cyd</name></employee></staff>
  <sales><sale by="e1" amount="120"/><sale by="e1" amount="80"/><sale by="e3" amount="200"/></sales>
  <note lang="en">year <b>2006</b> report</note>
</shop>"#;

fn engine() -> Session {
    let db = Arc::new(Database::new());
    db.load_document("shop.xml", DOC).unwrap();
    db.session()
}

fn run(q: &str) -> String {
    engine().query(q).unwrap().serialize().to_string()
}

#[test]
fn sequence_and_arithmetic_semantics() {
    assert_eq!(run("(1, (2, 3), ())"), "1 2 3");
    assert_eq!(run("2 + 3 * 4 - 1"), "13");
    assert_eq!(run("(7 idiv 2, 7 mod 2, -3)"), "3 1 -3");
    assert_eq!(run("1.5 * 2"), "3");
    assert_eq!(run("if (()) then 1 else 2"), "2");
    assert_eq!(run("if ((0)) then 1 else 2"), "2");
    assert_eq!(run("if (\"x\") then 1 else 2"), "1");
}

#[test]
fn path_navigation_and_axes() {
    assert_eq!(run("count(doc(\"shop.xml\")//employee)"), "3");
    assert_eq!(
        run("doc(\"shop.xml\")/shop/staff/employee[2]/name/text()"),
        "Bob"
    );
    assert_eq!(
        run("doc(\"shop.xml\")//employee[@id = \"e3\"]/name/text()"),
        "Cyd"
    );
    assert_eq!(
        run("for $n in doc(\"shop.xml\")//name return $n/parent::employee/@id"),
        "e1 e2 e3"
    );
    assert_eq!(
        run("count(doc(\"shop.xml\")//name/ancestor::*)"),
        // ancestors of the three name elements, duplicate-free within the
        // single iteration: employee×3, staff, shop
        "5"
    );
    assert_eq!(
        run("doc(\"shop.xml\")//employee[1]/following-sibling::employee[1]/name/text()"),
        "Bob"
    );
    // 16 elements + 8 text nodes below the document node
    assert_eq!(run("count(doc(\"shop.xml\")//node())"), "24");
    assert_eq!(
        run("doc(\"shop.xml\")/shop/note/b/preceding-sibling::text()"),
        "year "
    );
}

#[test]
fn filter_expression_positional_predicates() {
    // positions in a filter expression are relative to the whole sequence,
    // not to a per-context-node group (the path-step normalisation)
    assert_eq!(run("(3, 1, 2)[2]"), "1");
    assert_eq!(run("(3, 1, 2)[last()]"), "2");
    assert_eq!(run("(3, 1, 2)[position() = 1]"), "3");
    assert_eq!(run("(doc(\"shop.xml\")//employee/@id)[2]"), "e2");
    assert_eq!(
        run("let $s := doc(\"shop.xml\")//employee/@id return $s[2]"),
        "e2"
    );
    // filter then continue the path
    assert_eq!(run("(doc(\"shop.xml\")//employee)[2]/name/text()"), "Bob");
    // stacked predicates: general filter first, then positional
    assert_eq!(
        run("(doc(\"shop.xml\")//employee)[@dept = \"sales\"][2]/@id"),
        "e3"
    );
    // non-positional filters keep sequence order and duplicates
    assert_eq!(
        run("(doc(\"shop.xml\")//employee)[@dept = \"sales\"]/@id"),
        "e1 e3"
    );
    // per-iteration positions: a for-bound singleton is its own sequence
    assert_eq!(
        run("for $e in doc(\"shop.xml\")//employee return $e[1]/@id"),
        "e1 e2 e3"
    );
    assert_eq!(
        run("for $e in doc(\"shop.xml\")//employee return $e[2]/@id"),
        ""
    );
    // a let-bound sequence filtered inside each iteration of an outer loop
    assert_eq!(
        run("for $st in doc(\"shop.xml\")//staff \
             let $e := $st/employee return $e[2]/@id"),
        "e2"
    );
    // filters on atomics must not re-sort: the sequence order survives
    assert_eq!(run("(9, 4, 7)[. > 3]"), "9 4 7");
}

#[test]
fn general_comparisons_are_existential() {
    // any sale amount over 150?
    assert_eq!(run("doc(\"shop.xml\")//sale/@amount > 150"), "true");
    // all comparisons against the empty sequence are false
    assert_eq!(run("doc(\"shop.xml\")//missing = 1"), "false");
    // string vs number promotion on untyped attribute values
    assert_eq!(run("doc(\"shop.xml\")//employee/@dept = \"it\""), "true");
    assert_eq!(run("doc(\"shop.xml\")//salary/text() = 50000"), "true");
    // value comparison on singletons
    assert_eq!(run("\"abc\" lt \"abd\""), "true");
}

#[test]
fn general_comparisons_on_sequences() {
    // sequence vs sequence: true iff ANY pair compares true
    assert_eq!(run("(1, 2, 3) = (3, 4)"), "true");
    assert_eq!(run("(1, 2, 3) = (4, 5)"), "false");
    assert_eq!(run("(1, 2) < (2, 0)"), "true");
    assert_eq!(run("(5, 6) < (1, 2)"), "false");
    assert_eq!(run("(1, 2) > (5, 6)"), "false");
    // `!=` is existential too: some pair differs, even though both
    // sequences are equal as sequences
    assert_eq!(run("(1, 2) != (1, 2)"), "true");
    // string sequences compare lexicographically, existentially
    assert_eq!(run("(\"a\", \"b\") = \"b\""), "true");
    assert_eq!(run("(\"a\", \"b\") < (\"aa\")"), "true");
    // empty sequence on either side is always false, for every operator
    assert_eq!(run("() = ()"), "false");
    assert_eq!(run("(1, 2) <= ()"), "false");
    // node sequences from the document: any @by matching any @id?
    assert_eq!(
        run("doc(\"shop.xml\")//sale/@by = doc(\"shop.xml\")//employee/@id"),
        "true"
    );
    assert_eq!(
        run("doc(\"shop.xml\")//sale/@by = (\"e2\", \"e9\")"),
        "false"
    );
    // numeric promotion across a whole sequence of untyped attribute values
    assert_eq!(run("doc(\"shop.xml\")//sale/@amount = (80, 999)"), "true");
}

#[test]
fn flwor_where_order_let_and_joins() {
    assert_eq!(
        run("for $e in doc(\"shop.xml\")//employee \
             where exists($e/salary) \
             order by $e/salary/text() descending \
             return $e/name/text()"),
        "BobAnn"
    );
    assert_eq!(
        run("for $e at $i in doc(\"shop.xml\")//employee return concat($i, \":\", $e/@id)"),
        "1:e1 2:e2 3:e3"
    );
    // a value join: total sales per employee
    assert_eq!(
        run("for $e in doc(\"shop.xml\")//employee \
             let $s := for $x in doc(\"shop.xml\")//sale where $x/@by = $e/@id return $x \
             return <t who=\"{$e/name/text()}\">{sum(for $x in $s return number($x/@amount))}</t>"),
        "<t who=\"Ann\">200</t><t who=\"Bob\">0</t><t who=\"Cyd\">200</t>"
    );
}

#[test]
fn order_by_with_multiple_keys() {
    // string major key, string minor key with its own direction: dept
    // ascending groups (it, sales), ids descending inside each group
    assert_eq!(
        run("for $e in doc(\"shop.xml\")//employee \
             order by $e/@dept, $e/@id descending \
             return $e/@id"),
        "e2 e3 e1"
    );
    // string + numeric key mix: group sales by seller (string), amounts
    // numerically descending within each seller
    assert_eq!(
        run("for $s in doc(\"shop.xml\")//sale \
             order by $s/@by, number($s/@amount) descending \
             return $s/@amount"),
        "120 80 200"
    );
    assert_eq!(
        run("for $s in doc(\"shop.xml\")//sale \
             order by $s/@by, number($s/@amount) \
             return $s/@amount"),
        "80 120 200"
    );
    // three keys; the major key has one group so the second decides, the
    // third breaks the remaining tie
    assert_eq!(
        run("for $s in doc(\"shop.xml\")//sale \
             order by \"all\", $s/@by descending, number($s/@amount) \
             return $s/@amount"),
        "200 80 120"
    );
    // multi-key ordering through the join-recognised FLWOR shape
    assert_eq!(
        run("for $s in doc(\"shop.xml\")//sale \
             where $s/@by = doc(\"shop.xml\")//employee/@id \
             order by $s/@by descending, number($s/@amount) \
             return $s/@amount"),
        "200 80 120"
    );
}

#[test]
fn functions_and_aggregates() {
    assert_eq!(run("sum(doc(\"shop.xml\")//sale/@amount)"), "400");
    assert_eq!(run("max(doc(\"shop.xml\")//sale/@amount)"), "200");
    assert_eq!(run("min(doc(\"shop.xml\")//salary/text())"), "50000");
    assert_eq!(
        run("count(distinct-values(doc(\"shop.xml\")//employee/@dept))"),
        "2"
    );
    assert_eq!(
        run("string(doc(\"shop.xml\")/shop/note)"),
        "year 2006 report"
    );
    assert_eq!(
        run("contains(string(doc(\"shop.xml\")/shop/note), \"2006\")"),
        "true"
    );
    assert_eq!(
        run("string-join(doc(\"shop.xml\")//name/text(), \", \")"),
        "Ann, Bob, Cyd"
    );
    assert_eq!(run("normalize-space(\"  a   b \")"), "a b");
    assert_eq!(
        run("(floor(2.7), ceiling(2.1), round(2.5), abs(-3))"),
        "2 3 3 3"
    );
    assert_eq!(run("substring(\"staircase\", 6)"), "case");
    assert_eq!(run("substring(\"staircase\", 1, 5)"), "stair");
    assert_eq!(run("translate(\"abcabc\", \"ab\", \"xy\")"), "xycxyc");
    assert_eq!(run("upper-case(\"MonetDB/xquery\")"), "MONETDB/XQUERY");
    assert_eq!(run("name(doc(\"shop.xml\")/shop/staff)"), "staff");
    assert_eq!(run("empty(doc(\"shop.xml\")//cafeteria)"), "true");
    assert_eq!(run("not(doc(\"shop.xml\")//employee)"), "false");
    assert_eq!(run("subsequence((1,2,3,4,5), 2, 3)"), "2 3 4");
}

#[test]
fn constructors_nest_and_copy() {
    assert_eq!(
        run("<wrap n=\"{count(doc(\"shop.xml\")//employee)}\"><inner/>{doc(\"shop.xml\")/shop/note/b}</wrap>"),
        "<wrap n=\"3\"><inner/><b>2006</b></wrap>"
    );
    // adjacent atomics in content are space separated, nodes are deep copied
    assert_eq!(run("<s>{1, 2, \"x\"}</s>"), "<s>1 2 x</s>");
}

#[test]
fn quantified_expressions() {
    assert_eq!(
        run("some $s in doc(\"shop.xml\")//sale satisfies $s/@amount > 150"),
        "true"
    );
    assert_eq!(
        run("every $s in doc(\"shop.xml\")//sale satisfies $s/@amount > 150"),
        "false"
    );
    assert_eq!(
        run("every $s in doc(\"shop.xml\")//sale satisfies $s/@amount > 10"),
        "true"
    );
    assert_eq!(run("some $x in () satisfies true()"), "false");
}

#[test]
fn node_order_comparisons() {
    assert_eq!(
        run("doc(\"shop.xml\")//employee[@id=\"e1\"] << doc(\"shop.xml\")//employee[@id=\"e3\"]"),
        "true"
    );
    assert_eq!(
        run("doc(\"shop.xml\")//employee[@id=\"e1\"] >> doc(\"shop.xml\")//employee[@id=\"e3\"]"),
        "false"
    );
    assert_eq!(
        run("doc(\"shop.xml\")//employee[1] is doc(\"shop.xml\")//employee[@id=\"e1\"]"),
        "true"
    );
}

#[test]
fn results_identical_across_all_optimizer_configs() {
    let queries = [
        "for $e in doc(\"shop.xml\")//employee order by $e/@id descending return $e/@dept",
        "for $e in doc(\"shop.xml\")//employee \
         return count(for $s in doc(\"shop.xml\")//sale where $s/@by = $e/@id return $s)",
        "sum(doc(\"shop.xml\")//sale/@amount)",
    ];
    let reference: Vec<String> = queries.iter().map(|q| run(q)).collect();
    for config in [
        ExecConfig::naive(),
        ExecConfig {
            order_aware: false,
            ..ExecConfig::default()
        },
        ExecConfig {
            join_recognition: false,
            existential_minmax: false,
            ..ExecConfig::default()
        },
    ] {
        let db = Arc::new(Database::new());
        db.load_document("shop.xml", DOC).unwrap();
        let mut e = db.session_with_config(config);
        for (q, want) in queries.iter().zip(&reference) {
            assert_eq!(
                &e.query(q).unwrap().serialize().to_string(),
                want,
                "query {q}"
            );
        }
    }
}

#[test]
fn error_paths_are_typed() {
    let mut e = engine();
    assert!(matches!(e.query("1 +"), Err(Error::Parse(_))));
    assert!(matches!(e.query("$nope"), Err(Error::Compile(_))));
    assert!(matches!(
        e.query("doc(\"other.xml\")//x"),
        Err(Error::Exec(_))
    ));
    assert!(matches!(
        Database::new().load_document("bad.xml", "<a><b></a>"),
        Err(Error::Shred(_))
    ));
}
