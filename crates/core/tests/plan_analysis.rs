//! Behavioural tests of the static plan analysis: annotated `explain`
//! output, verifier errors at prepare time, property-driven simplification
//! visible in the rendered plan, and runtime validation of inferred
//! properties.

use mxq_xquery::{Database, Error, ExecConfig, Session};
use std::sync::Arc;

const DOC: &str = r#"<site>
  <people><person id="p0"><name>Ann</name></person>
          <person id="p1"><name>Bob</name></person></people>
  <orders><order buyer="p0" amount="12"/><order buyer="p0" amount="7"/>
          <order buyer="p1" amount="3"/></orders>
</site>"#;

fn engine() -> Session {
    let db = Arc::new(Database::new());
    db.load_document("site.xml", DOC).unwrap();
    db.session()
}

#[test]
fn explain_annotates_inferred_properties() {
    let s = engine()
        .explain("doc(\"site.xml\")/site/people/person/@id")
        .unwrap();
    // axis steps prove document order, duplicate freedom and [iter, pos]
    // sortedness; the attribute step inherits the value dictionary
    assert!(s.contains("scj"), "{s}");
    assert!(s.contains("doc-order"), "{s}");
    assert!(s.contains("dup-free"), "{s}");
    assert!(s.contains("dict=attr-values(site.xml)"), "{s}");
    assert!(s.contains("doc=site.xml"), "{s}");
}

#[test]
fn explain_reports_docorder_elimination() {
    // `$p` binds one node per iteration, so the predicated step needs no
    // document-order δ after back-mapping — the simplifier removes it
    let s = engine()
        .explain("for $p in doc(\"site.xml\")/site/people/person return $p/name[1]")
        .unwrap();
    // the operator is gone from the plan tree (the rewrite log below the
    // tree still names it)
    let tree_has_delta = s
        .lines()
        .filter(|l| !l.starts_with("--"))
        .any(|l| l.contains("docorder-δ"));
    assert!(!tree_has_delta, "{s}");
    assert!(s.contains("removed docorder-δ"), "{s}");
}

#[test]
fn explain_reports_distinct_elimination() {
    let s = engine()
        .explain(
            "for $p in doc(\"site.xml\")/site/people/person \
             return distinct-values($p/@id)",
        )
        .unwrap();
    assert!(s.contains("replaced distinct with data"), "{s}");
}

#[test]
fn explain_reports_proven_dictionary_join() {
    let s = engine()
        .explain(
            "for $p in doc(\"site.xml\")/site/people/person \
             for $o in doc(\"site.xml\")/site/orders/order \
             where $o/@buyer = $p/@id return $o/@amount",
        )
        .unwrap();
    assert!(s.contains("code=code"), "{s}");
    assert!(
        s.contains("committed nest(⋈) to the code-to-code join"),
        "{s}"
    );
}

#[test]
fn explain_mentions_no_rewrites_when_none_apply() {
    let s = engine().explain("1 + 2").unwrap();
    assert!(s.contains("no rewrites applied"), "{s}");
}

#[test]
fn verifier_rejects_path_steps_over_atomics_at_prepare_time() {
    // a path step whose context provably holds no nodes used to return the
    // empty sequence silently; the verifier turns it into a static error
    let err = engine().compile("(1, 2)/self::a").unwrap_err();
    assert!(matches!(err, Error::PlanInvariant(_)), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("node-free"), "{msg}");
}

#[test]
fn simplified_plans_produce_unchanged_results() {
    // queries hit by each rewrite rule still produce correct answers
    let mut e = engine();
    assert_eq!(
        e.query("for $p in doc(\"site.xml\")/site/people/person return $p/name[1]/text()")
            .unwrap()
            .serialize(),
        "AnnBob"
    );
    assert_eq!(
        e.query(
            "for $p in doc(\"site.xml\")/site/people/person \
             return distinct-values($p/@id)"
        )
        .unwrap()
        .serialize(),
        "p0 p1"
    );
    assert_eq!(
        e.query(
            "for $p in doc(\"site.xml\")/site/people/person \
             for $o in doc(\"site.xml\")/site/orders/order \
             where $o/@buyer = $p/@id return $o/@amount"
        )
        .unwrap()
        .serialize(),
        "12 7 3"
    );
}

#[test]
fn proven_dict_joins_are_counted() {
    let db = Arc::new(Database::new());
    db.load_document("site.xml", DOC).unwrap();
    let mut s = db.session();
    let (_, report) = s
        .query_with_report(
            "for $p in doc(\"site.xml\")/site/people/person \
             for $o in doc(\"site.xml\")/site/orders/order \
             where $o/@buyer = $p/@id return $o",
        )
        .unwrap();
    assert_eq!(report.stats.proven_dict_joins, 1);
}

#[test]
fn runtime_validation_accepts_correct_plans() {
    let db = Arc::new(Database::new());
    db.load_document("site.xml", DOC).unwrap();
    let mut checked = db.session_with_config(ExecConfig {
        validate_plans: true,
        ..ExecConfig::default()
    });
    for q in [
        "doc(\"site.xml\")//person[@id = \"p1\"]/name/text()",
        "for $p in doc(\"site.xml\")/site/people/person return $p/name[1]",
        "distinct-values(doc(\"site.xml\")//order/@buyer)",
        "count(doc(\"site.xml\")//order[@amount >= 7])",
        "for $p in doc(\"site.xml\")/site/people/person \
         for $o in doc(\"site.xml\")/site/orders/order \
         where $o/@buyer = $p/@id order by $o/@amount return $o/@amount",
    ] {
        checked.query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
    }
}

#[test]
fn validation_works_under_the_naive_config_too() {
    let db = Arc::new(Database::new());
    db.load_document("site.xml", DOC).unwrap();
    let mut checked = db.session_with_config(ExecConfig {
        validate_plans: true,
        ..ExecConfig::naive()
    });
    let r = checked
        .query("for $p in doc(\"site.xml\")//person return $p/@id")
        .unwrap();
    assert_eq!(r.serialize(), "p0 p1");
}

#[test]
fn updates_are_verified_and_validated() {
    let db = Arc::new(Database::new());
    db.load_document("site.xml", DOC).unwrap();
    let mut checked = db.session_with_config(ExecConfig {
        validate_plans: true,
        ..ExecConfig::default()
    });
    checked
        .execute_update(
            "insert nodes <order buyer=\"p1\" amount=\"9\"/> as last into \
             doc(\"site.xml\")/site/orders",
        )
        .unwrap();
    assert_eq!(
        checked
            .query("count(doc(\"site.xml\")//order)")
            .unwrap()
            .serialize(),
        "4"
    );
}
