//! The 20 XMark benchmark queries, phrased in the XQuery subset supported by
//! `mxq-xquery`.
//!
//! The queries follow the standard XMark definitions (Schmidt et al., VLDB
//! 2002) with the same navigation paths, join predicates and constructed
//! results; cosmetic adaptations (e.g. `doc("auction.xml")` as the document
//! accessor, explicit `string()` around `contains`) are noted inline.
//! Q1–Q20 cover exact-match lookup (Q1), ordered access (Q2–Q4), casting and
//! aggregation (Q5–Q7), value joins (Q8–Q12), reconstruction (Q13), full-text
//! style scanning (Q14), long path traversals (Q15, Q16), missing elements
//! (Q17), user-defined functions (Q18), sorting (Q19) and aggregation-heavy
//! reporting (Q20).

/// The query identifiers, 1 through 20.
pub const QUERY_IDS: [usize; 20] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
];

/// The XQuery text of XMark query `id` (1–20).
///
/// # Panics
/// Panics if `id` is not in `1..=20`.
pub fn query_text(id: usize) -> &'static str {
    match id {
        1 => Q1,
        2 => Q2,
        3 => Q3,
        4 => Q4,
        5 => Q5,
        6 => Q6,
        7 => Q7,
        8 => Q8,
        9 => Q9,
        10 => Q10,
        11 => Q11,
        12 => Q12,
        13 => Q13,
        14 => Q14,
        15 => Q15,
        16 => Q16,
        17 => Q17,
        18 => Q18,
        19 => Q19,
        20 => Q20,
        _ => panic!("XMark defines queries 1..=20, got {id}"),
    }
}

/// Q1 — return the name of the person with id `person0` (exact match).
pub const Q1: &str = r#"
for $b in doc("auction.xml")/site/people/person[@id = "person0"]
return $b/name/text()
"#;

/// Q2 — return the initial increases of all open auctions (ordered access).
pub const Q2: &str = r#"
for $b in doc("auction.xml")/site/open_auctions/open_auction
return <increase>{$b/bidder[1]/increase/text()}</increase>
"#;

/// Q3 — auctions whose first increase is at most half the last one.
pub const Q3: &str = r#"
for $b in doc("auction.xml")/site/open_auctions/open_auction
where $b/bidder[1]/increase/text() * 2 <= $b/bidder[last()]/increase/text()
return <increase first="{$b/bidder[1]/increase/text()}" last="{$b/bidder[last()]/increase/text()}"/>
"#;

/// Q4 — document-order test: auctions where a bid by person20 precedes a bid
/// by person51 (tail of ordered access).
pub const Q4: &str = r#"
for $b in doc("auction.xml")/site/open_auctions/open_auction
where some $pr1 in $b/bidder/personref[@person = "person20"] satisfies
      (some $pr2 in $b/bidder/personref[@person = "person51"] satisfies $pr1 << $pr2)
return <history>{$b/reserve/text()}</history>
"#;

/// Q5 — how many sold items cost more than 40 (casting).
pub const Q5: &str = r#"
count(for $i in doc("auction.xml")/site/closed_auctions/closed_auction
      where $i/price/text() >= 40
      return $i/price)
"#;

/// Q6 — how many items are listed on all continents (path + count).
pub const Q6: &str = r#"
for $b in doc("auction.xml")/site/regions return count($b//item)
"#;

/// Q7 — how many pieces of prose are in the database.
pub const Q7: &str = r#"
for $p in doc("auction.xml")/site
return count($p//description) + count($p//annotation) + count($p//emailaddress)
"#;

/// Q8 — list the names of persons and the number of items they bought
/// (equi-join Q8 of the paper; join recognition turns this into a hash join).
pub const Q8: &str = r#"
for $p in doc("auction.xml")/site/people/person
let $a := for $t in doc("auction.xml")/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{$p/name/text()}">{count($a)}</item>
"#;

/// Q9 — names of persons and the names of the European items they bought
/// (three-way join).
pub const Q9: &str = r#"
for $p in doc("auction.xml")/site/people/person
let $a := for $t in doc("auction.xml")/site/closed_auctions/closed_auction
          where $p/@id = $t/buyer/@person
          return (for $t2 in doc("auction.xml")/site/regions/europe/item
                  where $t2/@id = $t/itemref/@item
                  return $t2/name/text())
return <person name="{$p/name/text()}">{$a}</person>
"#;

/// Q10 — group persons by their interest category (grouping + restructuring).
pub const Q10: &str = r#"
for $i in distinct-values(doc("auction.xml")/site/people/person/profile/interest/@category)
let $p := for $t in doc("auction.xml")/site/people/person
          where $t/profile/interest/@category = $i
          return <personne>
                   <statistiques>
                     <sexe>{$t/profile/gender/text()}</sexe>
                     <age>{$t/profile/age/text()}</age>
                     <education>{$t/profile/education/text()}</education>
                     <revenu>{$t/profile/@income}</revenu>
                   </statistiques>
                   <coordonnees>
                     <nom>{$t/name/text()}</nom>
                     <ville>{$t/address/city/text()}</ville>
                     <pays>{$t/address/country/text()}</pays>
                     <email>{$t/emailaddress/text()}</email>
                   </coordonnees>
                   <cartePaiement>{$t/creditcard/text()}</cartePaiement>
                 </personne>
return <categorie><id>{$i}</id>{$p}</categorie>
"#;

/// Q11 — theta join (`>`): for each person, the number of open auctions whose
/// initial bid the person's income covers five-thousand-fold.
pub const Q11: &str = r#"
for $p in doc("auction.xml")/site/people/person
let $l := for $i in doc("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * $i/text()
          return $i
return <items name="{$p/name/text()}">{count($l)}</items>
"#;

/// Q12 — Q11 restricted to persons with an income above 50 000.
pub const Q12: &str = r#"
for $p in doc("auction.xml")/site/people/person
let $l := for $i in doc("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * $i/text()
          return $i
where $p/profile/@income > 50000
return <items person="{$p/profile/@income}">{count($l)}</items>
"#;

/// Q13 — reconstruction: list Australian items with their descriptions.
pub const Q13: &str = r#"
for $i in doc("auction.xml")/site/regions/australia/item
return <item name="{$i/name/text()}">{$i/description}</item>
"#;

/// Q14 — full-text flavour: items whose description contains "gold".
pub const Q14: &str = r#"
for $i in doc("auction.xml")/site//item
where contains(string($i/description), "gold")
return $i/name/text()
"#;

/// Q15 — a very long path expression (13 steps).
pub const Q15: &str = r#"
for $a in doc("auction.xml")/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()
return <text>{$a}</text>
"#;

/// Q16 — like Q15, but testing for existence of the path.
pub const Q16: &str = r#"
for $a in doc("auction.xml")/site/closed_auctions/closed_auction
where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()))
return <person id="{$a/seller/@person}"/>
"#;

/// Q17 — missing elements: persons without a homepage.
pub const Q17: &str = r#"
for $p in doc("auction.xml")/site/people/person
where empty($p/homepage/text())
return <person name="{$p/name/text()}"/>
"#;

/// Q18 — user-defined function converting reserve prices.
pub const Q18: &str = r#"
declare function local:convert($v) { 2.20371 * $v };
for $i in doc("auction.xml")/site/open_auctions/open_auction/reserve
return local:convert($i/text())
"#;

/// Q19 — sorting: items ordered by location.
pub const Q19: &str = r#"
for $b in doc("auction.xml")/site/regions//item
let $k := $b/name/text()
order by $b/location/text()
return <item name="{$k}">{$b/location/text()}</item>
"#;

/// Q20 — aggregation-heavy report over income brackets.
pub const Q20: &str = r#"
<result>
  <preferred>{count(doc("auction.xml")/site/people/person/profile[@income >= 100000])}</preferred>
  <standard>{count(doc("auction.xml")/site/people/person/profile[@income < 100000][@income >= 30000])}</standard>
  <challenge>{count(doc("auction.xml")/site/people/person/profile[@income < 30000])}</challenge>
  <na>{count(for $p in doc("auction.xml")/site/people/person
             where empty($p/profile/@income)
             return $p)}</na>
</result>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_xquery::parse_query;

    #[test]
    fn all_twenty_queries_parse() {
        for id in QUERY_IDS {
            let text = query_text(id);
            parse_query(text).unwrap_or_else(|e| panic!("Q{id} does not parse: {e}"));
        }
    }

    #[test]
    fn all_twenty_queries_compile() {
        for id in QUERY_IDS {
            let session = std::sync::Arc::new(mxq_xquery::Database::new()).session();
            session
                .compile(query_text(id))
                .unwrap_or_else(|e| panic!("Q{id} does not compile: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "queries 1..=20")]
    fn invalid_id_panics() {
        let _ = query_text(21);
    }
}
