//! Deterministic XMark-style auction document generator.
//!
//! The original benchmark uses the `xmlgen` C program; this module
//! re-implements the generator as a synthetic equivalent: the same document
//! schema (the element and attribute names the 20 queries navigate), the same
//! entity proportions as XMark scale factor 1 (25 500 people, 12 000 open
//! auctions, 9 750 closed auctions, 21 750 items over six regions, 1 000
//! categories per factor 1.0), consistent cross references (bidders,
//! buyers/sellers and item refs point to existing persons/items) and
//! deterministic pseudo-random content so runs are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mxq_xmldb::shred::{shred, ShredOptions};
use mxq_xmldb::Document;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// XMark scale factor: 1.0 corresponds to the ≈100 MB document of the
    /// original benchmark; the paper sweeps 0.011 (1.1 MB) … 110 (11 GB).
    pub factor: f64,
    /// RNG seed (fixed default for reproducibility).
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            factor: 0.01,
            seed: 42,
        }
    }
}

impl GenParams {
    /// Parameters for a given scale factor with the default seed.
    pub fn with_factor(factor: f64) -> Self {
        GenParams {
            factor,
            ..Default::default()
        }
    }

    fn count(&self, base: f64) -> usize {
        ((base * self.factor).round() as usize).max(1)
    }

    /// Number of persons at this scale factor.
    pub fn num_people(&self) -> usize {
        self.count(25_500.0)
    }
    /// Number of open auctions at this scale factor.
    pub fn num_open_auctions(&self) -> usize {
        self.count(12_000.0)
    }
    /// Number of closed auctions at this scale factor.
    pub fn num_closed_auctions(&self) -> usize {
        self.count(9_750.0)
    }
    /// Number of items (split over the six regions).
    pub fn num_items(&self) -> usize {
        self.count(21_750.0)
    }
    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.count(1_000.0)
    }
}

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

const WORDS: [&str; 24] = [
    "gold",
    "silver",
    "vintage",
    "rare",
    "antique",
    "mint",
    "condition",
    "shipping",
    "offer",
    "auction",
    "collector",
    "edition",
    "classic",
    "original",
    "signed",
    "limited",
    "bargain",
    "premium",
    "refurbished",
    "handmade",
    "imported",
    "certified",
    "exclusive",
    "promptly",
];

const FIRST_NAMES: [&str; 12] = [
    "Ada", "Bruno", "Carla", "Dimitri", "Elena", "Farid", "Greta", "Hugo", "Ines", "Jorge",
    "Keiko", "Liam",
];

const LAST_NAMES: [&str; 12] = [
    "Abel", "Brandt", "Costa", "Dietrich", "Engel", "Fischer", "Grust", "Haas", "Ito", "Jansen",
    "Keulen", "Lopez",
];

const COUNTRIES: [&str; 8] = [
    "United States",
    "Germany",
    "Netherlands",
    "Japan",
    "Brazil",
    "Kenya",
    "Australia",
    "France",
];

const CITIES: [&str; 8] = [
    "Amsterdam",
    "Munich",
    "Twente",
    "Chicago",
    "Tokyo",
    "Nairobi",
    "Sydney",
    "Lyon",
];

const EDUCATIONS: [&str; 4] = ["High School", "College", "Graduate School", "Other"];

fn sentence(rng: &mut StdRng, words: usize) -> String {
    (0..words)
        .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// Generate the XMark-style document as XML text.
pub fn generate_xml(params: &GenParams) -> String {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n_people = params.num_people();
    let n_open = params.num_open_auctions();
    let n_closed = params.num_closed_auctions();
    let n_items = params.num_items();
    let n_categories = params.num_categories();

    // rough pre-sizing: ~1 KB of text per entity keeps reallocation low
    let mut out =
        String::with_capacity(256 * (n_people + n_open + n_closed + n_items + n_categories) + 4096);
    out.push_str("<site>");

    // -- regions / items ---------------------------------------------------
    out.push_str("<regions>");
    let mut item_region = Vec::with_capacity(n_items);
    for (r, region) in REGIONS.iter().enumerate() {
        out.push_str(&format!("<{region}>"));
        for i in (0..n_items).filter(|i| i % REGIONS.len() == r) {
            item_region.push(region);
            let quantity = rng.gen_range(1..=5);
            let cat = rng.gen_range(0..n_categories);
            out.push_str(&format!(
                "<item id=\"item{i}\"><location>{}</location><quantity>{quantity}</quantity>\
                 <name>{} {}</name><payment>Creditcard</payment><description><text>{}</text></description>\
                 <shipping>Will ship internationally</shipping><incategory category=\"category{cat}\"/>\
                 <mailbox><mail><from>{}</from><to>{}</to><date>2006-06-{:02}</date>\
                 <text>{}</text></mail></mailbox></item>",
                COUNTRIES[rng.gen_range(0..COUNTRIES.len())],
                WORDS[rng.gen_range(0..WORDS.len())],
                WORDS[rng.gen_range(0..WORDS.len())],
                sentence(&mut rng, 12),
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                rng.gen_range(1..=28),
                sentence(&mut rng, 6),
            ));
        }
        out.push_str(&format!("</{region}>"));
    }
    out.push_str("</regions>");

    // -- categories ---------------------------------------------------------
    out.push_str("<categories>");
    for c in 0..n_categories {
        out.push_str(&format!(
            "<category id=\"category{c}\"><name>{}</name><description><text>{}</text></description></category>",
            WORDS[rng.gen_range(0..WORDS.len())],
            sentence(&mut rng, 8),
        ));
    }
    out.push_str("</categories>");

    // -- catgraph -----------------------------------------------------------
    out.push_str("<catgraph>");
    for _ in 0..n_categories {
        let from = rng.gen_range(0..n_categories);
        let to = rng.gen_range(0..n_categories);
        out.push_str(&format!(
            "<edge from=\"category{from}\" to=\"category{to}\"/>"
        ));
    }
    out.push_str("</catgraph>");

    // -- people ---------------------------------------------------------------
    out.push_str("<people>");
    for p in 0..n_people {
        let name = format!(
            "{} {}",
            FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
            LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
        );
        out.push_str(&format!(
            "<person id=\"person{p}\"><name>{name}</name>\
             <emailaddress>mailto:{}@example.org</emailaddress>\
             <phone>+1 ({}) {}</phone>\
             <address><street>{} Main St</street><city>{}</city><country>{}</country>\
             <zipcode>{}</zipcode></address>",
            name.to_lowercase().replace(' ', "."),
            rng.gen_range(100..999),
            rng.gen_range(1_000_000..9_999_999),
            rng.gen_range(1..120),
            CITIES[rng.gen_range(0..CITIES.len())],
            COUNTRIES[rng.gen_range(0..COUNTRIES.len())],
            rng.gen_range(10_000..99_999),
        ));
        // ~50% of people have a homepage (Q17 relies on some not having one)
        if rng.gen_bool(0.5) {
            out.push_str(&format!(
                "<homepage>http://www.example.org/~person{p}</homepage>"
            ));
        }
        out.push_str(&format!(
            "<creditcard>{} {} {} {}</creditcard>",
            rng.gen_range(1000..9999),
            rng.gen_range(1000..9999),
            rng.gen_range(1000..9999),
            rng.gen_range(1000..9999)
        ));
        // ~80% of people carry a profile with an income (Q11/Q12/Q20)
        if rng.gen_bool(0.8) {
            let income = rng.gen_range(9_000.0_f64..250_000.0);
            out.push_str(&format!("<profile income=\"{income:.2}\">"));
            for _ in 0..rng.gen_range(0..4) {
                out.push_str(&format!(
                    "<interest category=\"category{}\"/>",
                    rng.gen_range(0..n_categories)
                ));
            }
            out.push_str(&format!(
                "<education>{}</education><gender>{}</gender>\
                 <business>{}</business><age>{}</age></profile>",
                EDUCATIONS[rng.gen_range(0..EDUCATIONS.len())],
                if rng.gen_bool(0.5) { "male" } else { "female" },
                if rng.gen_bool(0.5) { "Yes" } else { "No" },
                rng.gen_range(18..80),
            ));
        }
        // watches
        out.push_str("<watches>");
        for _ in 0..rng.gen_range(0..3) {
            out.push_str(&format!(
                "<watch open_auction=\"open_auction{}\"/>",
                rng.gen_range(0..n_open)
            ));
        }
        out.push_str("</watches></person>");
    }
    out.push_str("</people>");

    // -- open auctions --------------------------------------------------------
    out.push_str("<open_auctions>");
    for a in 0..n_open {
        let initial = rng.gen_range(1.0_f64..300.0);
        let n_bidders = rng.gen_range(0..6);
        out.push_str(&format!(
            "<open_auction id=\"open_auction{a}\"><initial>{initial:.2}</initial>\
             <reserve>{:.2}</reserve>",
            initial * rng.gen_range(1.1..2.5)
        ));
        let mut current = initial;
        for b in 0..n_bidders {
            current += rng.gen_range(1.0..30.0);
            out.push_str(&format!(
                "<bidder><date>2006-06-{:02}</date><time>{:02}:{:02}:00</time>\
                 <personref person=\"person{}\"/><increase>{:.2}</increase></bidder>",
                rng.gen_range(1..=28),
                rng.gen_range(0..24),
                rng.gen_range(0..60),
                rng.gen_range(0..n_people),
                6.0 + b as f64 * 1.5,
            ));
        }
        out.push_str(&format!(
            "<current>{current:.2}</current><privacy>{}</privacy>\
             <itemref item=\"item{}\"/><seller person=\"person{}\"/>\
             <annotation><author person=\"person{}\"/>\
             <description><text>{}</text></description><happiness>{}</happiness></annotation>\
             <quantity>1</quantity><type>Regular</type>\
             <interval><start>2006-01-01</start><end>2006-12-31</end></interval></open_auction>",
            if rng.gen_bool(0.5) { "Yes" } else { "No" },
            rng.gen_range(0..n_items),
            rng.gen_range(0..n_people),
            rng.gen_range(0..n_people),
            sentence(&mut rng, 10),
            rng.gen_range(1..10),
        ));
    }
    out.push_str("</open_auctions>");

    // -- closed auctions -------------------------------------------------------
    out.push_str("<closed_auctions>");
    for c in 0..n_closed {
        let price = rng.gen_range(5.0_f64..500.0);
        // the deep Q15/Q16 path exists in roughly a quarter of the annotations;
        // the first closed auction is always deep so the path exists at every
        // scale factor (xmlgen guarantees this too)
        let deep = rng.gen_bool(0.25) || c == 0;
        let description = if deep {
            format!(
                "<description><parlist><listitem><parlist><listitem><text>\
                 {} <emph><keyword>{}</keyword></emph> {}</text></listitem></parlist></listitem>\
                 <listitem><text>{}</text></listitem></parlist></description>",
                sentence(&mut rng, 4),
                WORDS[rng.gen_range(0..WORDS.len())],
                sentence(&mut rng, 3),
                sentence(&mut rng, 5),
            )
        } else {
            format!(
                "<description><text>{}</text></description>",
                sentence(&mut rng, 8)
            )
        };
        out.push_str(&format!(
            "<closed_auction><seller person=\"person{}\"/><buyer person=\"person{}\"/>\
             <itemref item=\"item{}\"/><price>{price:.2}</price><date>2006-06-{:02}</date>\
             <quantity>1</quantity><type>Regular</type>\
             <annotation><author person=\"person{}\"/>{description}\
             <happiness>{}</happiness></annotation></closed_auction>",
            rng.gen_range(0..n_people),
            rng.gen_range(0..n_people),
            rng.gen_range(0..n_items),
            rng.gen_range(1..=28),
            rng.gen_range(0..n_people),
            rng.gen_range(1..10),
        ));
    }
    out.push_str("</closed_auctions>");

    out.push_str("</site>");
    out
}

/// Generate and shred the document in one go (named `auction.xml`, which is
/// what the bundled queries reference).
pub fn generate_document(params: &GenParams) -> Document {
    let xml = generate_xml(params);
    shred("auction.xml", &xml, &ShredOptions::default()).expect("generated XML must be well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = GenParams::with_factor(0.002);
        assert_eq!(generate_xml(&p), generate_xml(&p));
    }

    #[test]
    fn generated_document_shreds_and_has_expected_shape() {
        let p = GenParams::with_factor(0.002);
        let doc = generate_document(&p);
        doc.check_invariants().unwrap();
        assert_eq!(doc.name_of(0), "site");
        assert_eq!(doc.elements_named("person").len(), p.num_people());
        assert_eq!(
            doc.elements_named("open_auction").len(),
            p.num_open_auctions()
        );
        assert_eq!(
            doc.elements_named("closed_auction").len(),
            p.num_closed_auctions()
        );
        assert_eq!(doc.elements_named("item").len(), p.num_items());
        assert!(!doc.elements_named("bidder").is_empty());
        assert!(
            !doc.elements_named("keyword").is_empty(),
            "Q15 path must exist"
        );
    }

    #[test]
    fn size_scales_roughly_linearly() {
        let small = generate_xml(&GenParams::with_factor(0.001)).len();
        let large = generate_xml(&GenParams::with_factor(0.004)).len();
        let ratio = large as f64 / small as f64;
        assert!(ratio > 2.5 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn cross_references_are_consistent() {
        let p = GenParams::with_factor(0.002);
        let doc = generate_document(&p);
        // every buyer/@person refers to an existing person id
        let people: std::collections::HashSet<String> = doc
            .elements_named("person")
            .iter()
            .map(|&pre| doc.attribute(pre, "id").unwrap().to_string())
            .collect();
        for &b in doc.elements_named("buyer") {
            let r = doc.attribute(b, "person").unwrap();
            assert!(people.contains(r), "dangling buyer reference {r}");
        }
    }
}
