//! A naive, DOM-walking XQuery interpreter.
//!
//! This evaluator plays the role of the non-relational comparator systems of
//! the paper's Table 1 (eXist, Galax, X-Hive, BerkeleyDB XML): it navigates
//! the tree one node at a time, re-evaluates path expressions for every
//! iteration of every `for` loop, and evaluates value joins by nested loops.
//! There is no loop lifting, no staircase join, no join recognition and no
//! order-property bookkeeping — which is exactly why it exhibits the
//! behaviour the paper's comparison highlights (joins degrade quadratically,
//! path-heavy queries pay repeated traversals).
//!
//! It shares the parser and AST with `mxq-xquery`, so both engines accept the
//! same query texts and their results can be compared 1:1 in tests.

use std::collections::HashMap;
use std::fmt;

use mxq_engine::{Item, NodeId};
use mxq_staircase::{Axis, NodeTest};
use mxq_xmldb::{DocStore, NodeKind, NodeRead};
use mxq_xquery::ast::*;
use mxq_xquery::parser::parse_query;
use mxq_xquery::Params;

/// Errors raised by the naive interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaiveError {
    /// Parse failure (same parser as the relational engine).
    Parse(String),
    /// A variable that is not in scope.
    UnknownVariable(String),
    /// An external variable without binding or default.
    UnboundVariable(String),
    /// An unknown function.
    UnknownFunction(String),
    /// A document that is not loaded.
    UnknownDocument(String),
    /// A construct the interpreter does not handle.
    Unsupported(String),
}

impl fmt::Display for NaiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NaiveError::Parse(m) => write!(f, "parse error: {m}"),
            NaiveError::UnknownVariable(v) => write!(f, "unknown variable ${v}"),
            NaiveError::UnboundVariable(v) => {
                write!(
                    f,
                    "external variable ${v} is not bound (and has no default)"
                )
            }
            NaiveError::UnknownFunction(n) => write!(f, "unknown function {n}()"),
            NaiveError::UnknownDocument(d) => write!(f, "document not loaded: {d}"),
            NaiveError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for NaiveError {}

type NResult<T> = Result<T, NaiveError>;
type Env = HashMap<String, Vec<Item>>;

/// The naive interpreter over a document store.
pub struct NaiveInterpreter<'a> {
    store: &'a mut DocStore,
    functions: HashMap<String, FunctionDecl>,
}

impl<'a> NaiveInterpreter<'a> {
    /// Create an interpreter over the given store.
    pub fn new(store: &'a mut DocStore) -> Self {
        NaiveInterpreter {
            store,
            functions: HashMap::new(),
        }
    }

    /// Parse and evaluate a query, returning the result item sequence.
    pub fn run(&mut self, query: &str) -> NResult<Vec<Item>> {
        self.run_with_params(query, &Params::new())
    }

    /// Parse and evaluate a query with external-variable bindings — the
    /// naive counterpart of the relational engine's prepared-statement
    /// parameters, so both evaluators accept the same parameterized texts.
    pub fn run_with_params(&mut self, query: &str, params: &Params) -> NResult<Vec<Item>> {
        let parsed = parse_query(query).map_err(|e| NaiveError::Parse(e.to_string()))?;
        for f in &parsed.functions {
            self.functions.insert(f.name.clone(), f.clone());
        }
        let mut env = Env::new();
        for decl in &parsed.variables {
            let v = if decl.external {
                match params.get(&decl.name) {
                    Some(bound) => bound.to_vec(),
                    None => match &decl.init {
                        Some(default) => self.eval(default, &env)?,
                        None => return Err(NaiveError::UnboundVariable(decl.name.clone())),
                    },
                }
            } else {
                let init = decl.init.as_ref().ok_or_else(|| {
                    NaiveError::Unsupported(format!("variable ${} without a value", decl.name))
                })?;
                self.eval(init, &env)?
            };
            env.insert(decl.name.clone(), v);
        }
        self.eval(&parsed.body, &env)
    }

    fn eval(&mut self, expr: &Expr, env: &Env) -> NResult<Vec<Item>> {
        match expr {
            Expr::Literal(l) => Ok(vec![match l {
                Literal::Integer(i) => Item::Int(*i),
                Literal::Double(d) => Item::Dbl(*d),
                Literal::String(s) => Item::str(s.as_str()),
            }]),
            Expr::Empty => Ok(vec![]),
            Expr::Var(v) => env
                .get(v)
                .cloned()
                .ok_or_else(|| NaiveError::UnknownVariable(v.clone())),
            Expr::Sequence(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend(self.eval(p, env)?);
                }
                Ok(out)
            }
            Expr::Flwor {
                clauses,
                where_,
                order_by,
                ret,
            } => self.eval_flwor(clauses, where_.as_deref(), order_by.as_ref(), ret, env),
            Expr::If { cond, then, els } => {
                let c = self.eval(cond, env)?;
                if ebv(&c) {
                    self.eval(then, env)
                } else {
                    self.eval(els, env)
                }
            }
            Expr::Quantified {
                some,
                var,
                source,
                satisfies,
            } => {
                let src = self.eval(source, env)?;
                let mut result = !*some;
                for item in src {
                    let mut env2 = env.clone();
                    env2.insert(var.clone(), vec![item]);
                    let sat = ebv(&self.eval(satisfies, &env2)?);
                    if *some && sat {
                        result = true;
                        break;
                    }
                    if !*some && !sat {
                        result = false;
                        break;
                    }
                }
                Ok(vec![Item::Bool(result)])
            }
            Expr::Arith { op, l, r } => {
                let a = self.first_number(l, env)?;
                let b = self.first_number(r, env)?;
                let (Some(a), Some(b)) = (a, b) else {
                    return Ok(vec![]);
                };
                let v = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                    ArithOp::IDiv => (a / b).trunc(),
                    ArithOp::Mod => a % b,
                };
                if v.fract() == 0.0
                    && matches!(
                        op,
                        ArithOp::Add | ArithOp::Sub | ArithOp::Mul | ArithOp::IDiv | ArithOp::Mod
                    )
                {
                    Ok(vec![Item::Int(v as i64)])
                } else {
                    Ok(vec![Item::Dbl(v)])
                }
            }
            Expr::Neg(e) => {
                let v = self.first_number(e, env)?;
                Ok(v.map(|x| vec![Item::Dbl(-x)]).unwrap_or_default())
            }
            Expr::Comparison { kind, l, r } => {
                let lv = self.eval(l, env)?;
                let rv = self.eval(r, env)?;
                let result = match kind {
                    CompKind::General(op) => {
                        // nested-loop existential comparison
                        let mut found = false;
                        'outer: for a in &lv {
                            for b in &rv {
                                if self.atomize(a).compare(*op, &self.atomize(b)) {
                                    found = true;
                                    break 'outer;
                                }
                            }
                        }
                        found
                    }
                    CompKind::Value(op) => match (lv.first(), rv.first()) {
                        (Some(a), Some(b)) => self.atomize(a).compare(*op, &self.atomize(b)),
                        _ => false,
                    },
                    CompKind::NodeBefore | CompKind::NodeAfter | CompKind::NodeIs => {
                        match (
                            lv.first().and_then(|i| i.as_node()),
                            rv.first().and_then(|i| i.as_node()),
                        ) {
                            (Some(a), Some(b)) => match kind {
                                CompKind::NodeBefore => a < b,
                                CompKind::NodeAfter => a > b,
                                _ => a == b,
                            },
                            _ => false,
                        }
                    }
                };
                Ok(vec![Item::Bool(result)])
            }
            Expr::Logical { is_and, l, r } => {
                let a = ebv(&self.eval(l, env)?);
                let b = ebv(&self.eval(r, env)?);
                Ok(vec![Item::Bool(if *is_and { a && b } else { a || b })])
            }
            Expr::Path { start, steps } => {
                let mut ctx = match start {
                    Some(s) => self.eval(s, env)?,
                    None => {
                        return Err(NaiveError::Unsupported("absolute path".into()));
                    }
                };
                for step in steps {
                    ctx = self.eval_step(&ctx, step, env)?;
                }
                Ok(ctx)
            }
            Expr::FunCall { name, args } => self.eval_funcall(name, args, env),
            Expr::Element(ctor) => Ok(vec![self.construct(ctor, env)?]),
        }
    }

    // ------------------------------------------------------------------
    // FLWOR
    // ------------------------------------------------------------------

    fn eval_flwor(
        &mut self,
        clauses: &[Clause],
        where_: Option<&Expr>,
        order_by: Option<&OrderSpec>,
        ret: &Expr,
        env: &Env,
    ) -> NResult<Vec<Item>> {
        // build the tuple stream (environments) clause by clause
        let mut envs: Vec<Env> = vec![env.clone()];
        for clause in clauses {
            let mut next = Vec::new();
            match clause {
                Clause::For { var, at, source } => {
                    for e in &envs {
                        let src = self.eval(source, e)?;
                        for (idx, item) in src.into_iter().enumerate() {
                            let mut e2 = e.clone();
                            e2.insert(var.clone(), vec![item]);
                            if let Some(a) = at {
                                e2.insert(a.clone(), vec![Item::Int(idx as i64 + 1)]);
                            }
                            next.push(e2);
                        }
                    }
                }
                Clause::Let { var, value } => {
                    for e in &envs {
                        let v = self.eval(value, e)?;
                        let mut e2 = e.clone();
                        e2.insert(var.clone(), v);
                        next.push(e2);
                    }
                }
            }
            envs = next;
        }
        // where
        if let Some(w) = where_ {
            let mut kept = Vec::new();
            for e in envs {
                if ebv(&self.eval(w, &e)?) {
                    kept.push(e);
                }
            }
            envs = kept;
        }
        // order by (multi-key: compare major key first, per-key direction)
        if let Some(spec) = order_by {
            let mut keyed: Vec<(Vec<Item>, Env)> = Vec::new();
            for e in envs {
                let mut keys = Vec::with_capacity(spec.keys.len());
                for k in &spec.keys {
                    let key = self
                        .eval(&k.key, &e)?
                        .first()
                        .map(|i| self.atomize(i))
                        .unwrap_or(Item::str(""));
                    keys.push(key);
                }
                keyed.push((keys, e));
            }
            keyed.sort_by(|a, b| {
                for (i, k) in spec.keys.iter().enumerate() {
                    let ord = a.0[i].total_cmp(&b.0[i]);
                    let ord = if k.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            envs = keyed.into_iter().map(|(_, e)| e).collect();
        }
        // return
        let mut out = Vec::new();
        for e in envs {
            out.extend(self.eval(ret, &e)?);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // paths
    // ------------------------------------------------------------------

    fn eval_step(&mut self, ctx: &[Item], step: &Step, env: &Env) -> NResult<Vec<Item>> {
        let mut out: Vec<Item> = Vec::new();
        for item in ctx {
            let Some(node) = item.as_node() else { continue };
            let mut results = self.axis_nodes(node, step.axis, &step.test);
            for pred in &step.predicates {
                results = self.apply_predicate(results, pred, env)?;
            }
            out.extend(results);
        }
        // document order + duplicate elimination over node results
        if out.iter().all(|i| i.is_node()) {
            out.sort_by(|a, b| a.total_cmp(b));
            out.dedup_by(|a, b| a.total_cmp(b) == std::cmp::Ordering::Equal);
        }
        Ok(out)
    }

    fn apply_predicate(
        &mut self,
        results: Vec<Item>,
        pred: &Expr,
        env: &Env,
    ) -> NResult<Vec<Item>> {
        // positional forms
        if let Expr::Literal(Literal::Integer(n)) = pred {
            let idx = *n as usize;
            return Ok(results
                .get(idx.wrapping_sub(1))
                .cloned()
                .into_iter()
                .collect());
        }
        if let Expr::FunCall { name, args } = pred {
            if name == "last" && args.is_empty() {
                return Ok(results.last().cloned().into_iter().collect());
            }
        }
        let mut kept = Vec::new();
        for item in results {
            let mut env2 = env.clone();
            env2.insert(".".into(), vec![item.clone()]);
            if ebv(&self.eval(pred, &env2)?) {
                kept.push(item);
            }
        }
        Ok(kept)
    }

    /// Per-node axis navigation: a plain recursive tree walk, no skipping, no
    /// pruning, no shared scans.
    fn axis_nodes(&self, node: NodeId, axis: Axis, test: &NodeTest) -> Vec<Item> {
        let doc = &self.store.container(node.frag);
        let pre = node.pre;
        let mk = |p: u32| Item::Node(NodeId::new(node.frag, p));
        match axis {
            Axis::Attribute => {
                let mut out = Vec::new();
                match test {
                    NodeTest::Named(name) => {
                        if let Some(v) = doc.attribute(pre, name) {
                            out.push(Item::str(v));
                        }
                    }
                    _ => {
                        for (_, value) in doc.attrs(pre) {
                            out.push(Item::str(value.as_ref()));
                        }
                    }
                }
                out
            }
            Axis::Child => doc
                .children(pre)
                .filter(|&c| test.matches(doc, c))
                .map(mk)
                .collect(),
            Axis::Descendant | Axis::DescendantOrSelf => {
                let start = if axis == Axis::Descendant {
                    pre + 1
                } else {
                    pre
                };
                (start..=pre + doc.size(pre))
                    .filter(|&v| test.matches(doc, v))
                    .map(mk)
                    .collect()
            }
            Axis::SelfAxis => {
                if test.matches(doc, pre) {
                    vec![mk(pre)]
                } else {
                    vec![]
                }
            }
            Axis::Parent => doc
                .parent(pre)
                .filter(|&p| test.matches(doc, p))
                .map(mk)
                .into_iter()
                .collect(),
            Axis::Ancestor | Axis::AncestorOrSelf => {
                let mut out = Vec::new();
                if axis == Axis::AncestorOrSelf && test.matches(doc, pre) {
                    out.push(mk(pre));
                }
                let mut cur = pre;
                while let Some(p) = doc.parent(cur) {
                    if test.matches(doc, p) {
                        out.push(mk(p));
                    }
                    cur = p;
                }
                out
            }
            Axis::Following => {
                let boundary = pre + doc.size(pre);
                (boundary + 1..doc.len() as u32)
                    .filter(|&v| test.matches(doc, v))
                    .map(mk)
                    .collect()
            }
            Axis::Preceding => (0..pre)
                .filter(|&v| v + doc.size(v) < pre && test.matches(doc, v))
                .map(mk)
                .collect(),
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                let Some(p) = doc.parent(pre) else {
                    return vec![];
                };
                doc.children(p)
                    .filter(|&v| {
                        let keep = if axis == Axis::FollowingSibling {
                            v > pre
                        } else {
                            v < pre
                        };
                        keep && test.matches(doc, v)
                    })
                    .map(mk)
                    .collect()
            }
        }
    }

    // ------------------------------------------------------------------
    // functions, construction, helpers
    // ------------------------------------------------------------------

    fn eval_funcall(&mut self, name: &str, args: &[Expr], env: &Env) -> NResult<Vec<Item>> {
        match name {
            "doc" | "document" => {
                let doc_name = match args.first() {
                    Some(Expr::Literal(Literal::String(s))) => s.clone(),
                    _ => return Err(NaiveError::Unsupported("doc() without literal".into())),
                };
                let root = self
                    .store
                    .document_root(&doc_name)
                    .ok_or(NaiveError::UnknownDocument(doc_name))?;
                Ok(vec![Item::Node(root)])
            }
            "count" => Ok(vec![Item::Int(self.eval_arg(args, 0, env)?.len() as i64)]),
            "sum" => {
                let v = self.eval_arg(args, 0, env)?;
                let s: f64 = v.iter().filter_map(|i| self.atomize(i).as_number()).sum();
                Ok(vec![if s.fract() == 0.0 {
                    Item::Int(s as i64)
                } else {
                    Item::Dbl(s)
                }])
            }
            "avg" => {
                let v = self.eval_arg(args, 0, env)?;
                if v.is_empty() {
                    return Ok(vec![]);
                }
                let nums: Vec<f64> = v
                    .iter()
                    .filter_map(|i| self.atomize(i).as_number())
                    .collect();
                Ok(vec![Item::Dbl(
                    nums.iter().sum::<f64>() / nums.len().max(1) as f64,
                )])
            }
            "min" | "max" => {
                let v = self.eval_arg(args, 0, env)?;
                let mut atoms: Vec<Item> = v.iter().map(|i| self.atomize(i)).collect();
                atoms.sort_by(|a, b| a.total_cmp(b));
                let pick = if name == "min" {
                    atoms.first()
                } else {
                    atoms.last()
                };
                Ok(pick.cloned().into_iter().collect())
            }
            "exists" => Ok(vec![Item::Bool(!self.eval_arg(args, 0, env)?.is_empty())]),
            "empty" => Ok(vec![Item::Bool(self.eval_arg(args, 0, env)?.is_empty())]),
            "not" => Ok(vec![Item::Bool(!ebv(&self.eval_arg(args, 0, env)?))]),
            "boolean" => Ok(vec![Item::Bool(ebv(&self.eval_arg(args, 0, env)?))]),
            "true" => Ok(vec![Item::Bool(true)]),
            "false" => Ok(vec![Item::Bool(false)]),
            "zero-or-one" | "exactly-one" | "one-or-more" => self.eval_arg(args, 0, env),
            "data" => Ok(self
                .eval_arg(args, 0, env)?
                .iter()
                .map(|i| self.atomize(i))
                .collect()),
            "string" => {
                let v = self.eval_arg(args, 0, env)?;
                Ok(vec![Item::str(
                    v.first().map(|i| self.string_of(i)).unwrap_or_default(),
                )])
            }
            "number" => {
                let v = self.eval_arg(args, 0, env)?;
                Ok(vec![Item::Dbl(
                    v.first()
                        .and_then(|i| self.atomize(i).as_number())
                        .unwrap_or(f64::NAN),
                )])
            }
            "distinct-values" => {
                let v = self.eval_arg(args, 0, env)?;
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for i in v {
                    let a = self.atomize(&i);
                    if seen.insert(a.string_value()) {
                        out.push(a);
                    }
                }
                Ok(out)
            }
            "contains" => {
                let a = self.first_string(args, 0, env)?;
                let b = self.first_string(args, 1, env)?;
                Ok(vec![Item::Bool(a.contains(&b))])
            }
            "starts-with" => {
                let a = self.first_string(args, 0, env)?;
                let b = self.first_string(args, 1, env)?;
                Ok(vec![Item::Bool(a.starts_with(&b))])
            }
            "concat" => {
                let mut s = String::new();
                for i in 0..args.len() {
                    s.push_str(&self.first_string(args, i, env)?);
                }
                Ok(vec![Item::str(s)])
            }
            "string-length" => {
                let a = self.first_string(args, 0, env)?;
                Ok(vec![Item::Int(a.chars().count() as i64)])
            }
            "name" | "local-name" => {
                let v = self.eval_arg(args, 0, env)?;
                let n = v
                    .first()
                    .and_then(|i| i.as_node())
                    .map(|n| self.store.name_of(n).to_string())
                    .unwrap_or_default();
                Ok(vec![Item::str(n)])
            }
            "round" | "floor" | "ceiling" | "abs" => {
                let v = self
                    .eval_arg(args, 0, env)?
                    .first()
                    .and_then(|i| self.atomize(i).as_number());
                Ok(v.map(|x| {
                    let r = match name {
                        "round" => x.round(),
                        "floor" => x.floor(),
                        "ceiling" => x.ceil(),
                        _ => x.abs(),
                    };
                    vec![Item::Dbl(r)]
                })
                .unwrap_or_default())
            }
            _ => {
                let Some(decl) = self.functions.get(name).cloned() else {
                    return Err(NaiveError::UnknownFunction(name.to_string()));
                };
                let mut env2 = env.clone();
                for (param, arg) in decl.params.iter().zip(args) {
                    let v = self.eval(arg, env)?;
                    env2.insert(param.clone(), v);
                }
                self.eval(&decl.body, &env2)
            }
        }
    }

    fn construct(&mut self, ctor: &ElementCtor, env: &Env) -> NResult<Item> {
        // attributes
        let mut attrs = Vec::new();
        for (name, parts) in &ctor.attributes {
            let mut value = String::new();
            for p in parts {
                match p {
                    AttrPart::Text(t) => value.push_str(t),
                    AttrPart::Expr(e) => {
                        let v = self.eval(e, env)?;
                        value.push_str(&v.first().map(|i| self.string_of(i)).unwrap_or_default());
                    }
                }
            }
            attrs.push((name.clone(), value));
        }
        // content
        let mut content_items: Vec<Item> = Vec::new();
        for c in &ctor.content {
            match c {
                Content::Text(t) => content_items.push(Item::str(t.as_str())),
                Content::Expr(e) => content_items.extend(self.eval(e, env)?),
                Content::Element(e) => content_items.push(self.construct(e, env)?),
            }
        }
        // materialise the copies first (cannot borrow the store while building)
        enum Piece {
            Text(String),
            Copy(NodeId),
        }
        let mut pieces = Vec::new();
        let mut pending = String::new();
        for item in &content_items {
            match item {
                Item::Node(n) => {
                    if !pending.is_empty() {
                        pieces.push(Piece::Text(std::mem::take(&mut pending)));
                    }
                    pieces.push(Piece::Copy(*n));
                }
                atomic => {
                    if !pending.is_empty() {
                        pending.push(' ');
                    }
                    pending.push_str(&atomic.string_value());
                }
            }
        }
        if !pending.is_empty() {
            pieces.push(Piece::Text(pending));
        }
        // snapshot of existing containers for copying
        let transient_snapshot = self.store.transient().clone();
        let transient = std::mem::take(self.store.transient_mut());
        let mut builder = mxq_xmldb::DocumentBuilder::append_to(transient, 0);
        let root = builder.start_element(&ctor.name);
        for (n, v) in &attrs {
            builder.attribute(n, v);
        }
        for piece in pieces {
            match piece {
                Piece::Text(t) => {
                    builder.text(&t);
                }
                Piece::Copy(n) => {
                    if n.frag == mxq_xmldb::TRANSIENT_FRAG {
                        builder.copy_subtree(&transient_snapshot, n.pre);
                    } else {
                        builder.copy_subtree(&self.store.container(n.frag), n.pre);
                    }
                }
            }
        }
        builder.end_element();
        *self.store.transient_mut() = builder.finish();
        Ok(Item::Node(NodeId::new(mxq_xmldb::TRANSIENT_FRAG, root)))
    }

    fn eval_arg(&mut self, args: &[Expr], idx: usize, env: &Env) -> NResult<Vec<Item>> {
        match args.get(idx) {
            Some(a) => self.eval(a, env),
            None => Ok(vec![]),
        }
    }

    fn first_string(&mut self, args: &[Expr], idx: usize, env: &Env) -> NResult<String> {
        Ok(self
            .eval_arg(args, idx, env)?
            .first()
            .map(|i| self.string_of(i))
            .unwrap_or_default())
    }

    fn first_number(&mut self, e: &Expr, env: &Env) -> NResult<Option<f64>> {
        Ok(self
            .eval(e, env)?
            .first()
            .and_then(|i| self.atomize(i).as_number()))
    }

    fn atomize(&self, item: &Item) -> Item {
        match item {
            Item::Node(n) => Item::str(self.store.string_value(*n)),
            other => other.clone(),
        }
    }

    fn string_of(&self, item: &Item) -> String {
        match item {
            Item::Node(n) => self.store.string_value(*n),
            other => other.string_value(),
        }
    }

    /// Serialize a result sequence (nodes as XML, atomics as text).
    pub fn serialize(&self, items: &[Item]) -> String {
        mxq_xquery::serialize_items(self.store, items)
    }
}

fn ebv(items: &[Item]) -> bool {
    match items {
        [] => false,
        v if v.iter().any(|i| i.is_node()) => true,
        [single] => single.effective_boolean(),
        _ => true,
    }
}

/// Does a node kind comparison make `kind` usable here (kept for API parity).
pub fn is_element(kind: NodeKind) -> bool {
    kind == NodeKind::Element
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_xquery::Database;
    use std::sync::Arc;

    fn store_with(xml: &str) -> DocStore {
        let mut s = DocStore::new();
        s.load_xml("doc.xml", xml).unwrap();
        s
    }

    #[test]
    fn basic_queries_match_relational_engine() {
        let xml = "<site><people><person id=\"p0\"><name>Ann</name></person>\
                   <person id=\"p1\"><name>Bob</name></person></people>\
                   <orders><o buyer=\"p0\"/><o buyer=\"p0\"/><o buyer=\"p1\"/></orders></site>";
        let queries = [
            "for $p in doc(\"doc.xml\")/site/people/person return $p/name/text()",
            "count(doc(\"doc.xml\")//person)",
            "for $p in doc(\"doc.xml\")/site/people/person \
             return <r>{count(for $o in doc(\"doc.xml\")/site/orders/o where $o/@buyer = $p/@id return $o)}</r>",
            "for $p in doc(\"doc.xml\")/site/people/person[@id = \"p1\"] return $p/name/text()",
            "if (1 < 2) then \"yes\" else \"no\"",
        ];
        for q in queries {
            let mut store = store_with(xml);
            let mut naive = NaiveInterpreter::new(&mut store);
            let n_items = naive.run(q).unwrap();
            let n_str = naive.serialize(&n_items);

            let db = Arc::new(Database::new());
            db.load_document("doc.xml", xml).unwrap();
            let r = db.session().query(q).unwrap();
            assert_eq!(n_str, r.serialize(), "query {q}");
        }
    }

    #[test]
    fn positional_predicates_and_order() {
        let xml = "<a><b k=\"2\">x</b><b k=\"1\">y</b></a>";
        let mut store = store_with(xml);
        let mut naive = NaiveInterpreter::new(&mut store);
        let r = naive.run("doc(\"doc.xml\")/a/b[2]/text()").unwrap();
        assert_eq!(naive.serialize(&r), "y");
        let r = naive
            .run("for $b in doc(\"doc.xml\")/a/b order by $b/@k return $b/text()")
            .unwrap();
        assert_eq!(naive.serialize(&r), "yx");
    }

    #[test]
    fn element_construction() {
        let xml = "<a><b>1</b></a>";
        let mut store = store_with(xml);
        let mut naive = NaiveInterpreter::new(&mut store);
        let r = naive
            .run("for $b in doc(\"doc.xml\")/a/b return <out v=\"{$b/text()}\">{$b}</out>")
            .unwrap();
        assert_eq!(naive.serialize(&r), "<out v=\"1\"><b>1</b></out>");
    }

    #[test]
    fn unknown_names_error() {
        let mut store = DocStore::new();
        let mut naive = NaiveInterpreter::new(&mut store);
        assert!(matches!(
            naive.run("$x"),
            Err(NaiveError::UnknownVariable(_))
        ));
        assert!(matches!(
            naive.run("nope()"),
            Err(NaiveError::UnknownFunction(_))
        ));
        assert!(matches!(
            naive.run("doc(\"zzz.xml\")/a"),
            Err(NaiveError::UnknownDocument(_))
        ));
    }
}
