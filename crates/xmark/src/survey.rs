//! Published XMark results and the SPEC-normalisation arithmetic of the
//! paper's survey (Table 1, Table 2, Figure 16).
//!
//! Table 1 of the paper reports the authors' own measurements of
//! MonetDB/XQuery (MXQ), Galax, X-Hive, BerkeleyDB XML (BDB) and eXist at
//! document sizes from 1.1 MB to 11 GB.  Table 2 lists, for a set of systems
//! from the literature, the CPU used and its SPECint-CPU2000 score; Figure 16
//! divides each published time by the ratio of SPEC scores and plots it
//! relative to MonetDB/XQuery.
//!
//! The numbers below are transcribed from the paper so the normalisation can
//! be recomputed, and so our own measurements (this reproduction) can be put
//! on the same axes by the `fig16_survey` example.

/// Elapsed seconds, `None` meaning "did not finish within an hour" (DNF).
pub type Secs = Option<f64>;

/// One row of Table 1: published elapsed times for one XMark query.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// XMark query number (1–20).
    pub query: usize,
    /// 1.1 MB document: MXQ, Galax, X-Hive, BDB, eXist.
    pub mb1: [Secs; 5],
    /// 11 MB document: MXQ, Galax, X-Hive, BDB, eXist.
    pub mb11: [Secs; 5],
    /// 110 MB document: MXQ, Galax, X-Hive, BDB.
    pub mb110: [Secs; 4],
    /// 1.1 GB document: MXQ, X-Hive, BDB.
    pub gb1: [Secs; 3],
    /// 11 GB document: MXQ.
    pub gb11: Secs,
}

/// System labels for the five columns measured by the authors (Table 1).
pub const TABLE1_SYSTEMS: [&str; 5] = ["MXQ", "Galax", "X-Hive", "BDB", "eXist"];

/// The full Table 1 of the paper.
pub const TABLE1: [Table1Row; 20] = [
    Table1Row {
        query: 1,
        mb1: [
            Some(0.013),
            Some(0.000),
            Some(0.170),
            Some(0.007),
            Some(0.011),
        ],
        mb11: [Some(0.01), Some(0.06), Some(0.37), Some(0.05), Some(0.10)],
        mb110: [Some(0.12), Some(0.72), Some(1.29), Some(0.51)],
        gb1: [Some(1.3), Some(9.9), Some(5.9)],
        gb11: Some(14.0),
    },
    Table1Row {
        query: 2,
        mb1: [
            Some(0.008),
            Some(0.002),
            Some(0.090),
            Some(0.014),
            Some(0.140),
        ],
        mb11: [Some(0.02), Some(0.03), Some(0.45), Some(0.13), Some(5.67)],
        mb110: [Some(0.19), Some(0.31), Some(1.75), Some(1.38)],
        gb1: [Some(1.8), Some(33.0), Some(43.1)],
        gb11: Some(19.0),
    },
    Table1Row {
        query: 3,
        mb1: [
            Some(0.029),
            Some(0.012),
            Some(0.120),
            Some(0.035),
            Some(0.176),
        ],
        mb11: [Some(0.14), Some(0.14), Some(0.65), Some(0.34), Some(6.61)],
        mb110: [Some(1.20), Some(1.76), Some(5.66), Some(3.55)],
        gb1: [Some(11.5), Some(25.1), Some(37.1)],
        gb11: Some(176.0),
    },
    Table1Row {
        query: 4,
        mb1: [
            Some(0.013),
            Some(0.026),
            Some(0.070),
            Some(0.042),
            Some(0.378),
        ],
        mb11: [Some(0.03), Some(0.22), Some(0.10), Some(0.39), Some(15.40)],
        mb110: [Some(0.42), Some(2.91), Some(1.00), Some(4.07)],
        gb1: [Some(4.5), Some(18.1), Some(43.3)],
        gb11: Some(44.0),
    },
    Table1Row {
        query: 5,
        mb1: [
            Some(0.006),
            Some(0.005),
            Some(0.040),
            Some(0.011),
            Some(2.419),
        ],
        mb11: [Some(0.01), Some(0.05), Some(0.13), Some(0.10), Some(185.47)],
        mb110: [Some(0.08), Some(0.63), Some(0.90), Some(1.05)],
        gb1: [Some(0.8), Some(20.7), Some(11.4)],
        gb11: Some(10.0),
    },
    Table1Row {
        query: 6,
        mb1: [
            Some(0.003),
            Some(0.117),
            Some(0.100),
            Some(0.107),
            Some(0.002),
        ],
        mb11: [Some(0.00), Some(1.30), Some(1.07), Some(1.14), Some(0.01)],
        mb110: [Some(0.00), Some(13.29), Some(10.17), Some(13.23)],
        gb1: [Some(0.0), Some(178.1), None],
        gb11: Some(0.1),
    },
    Table1Row {
        query: 7,
        mb1: [
            Some(0.003),
            Some(0.277),
            Some(0.110),
            Some(0.122),
            Some(0.007),
        ],
        mb11: [Some(0.00), Some(2.68), Some(1.57), Some(1.31), Some(0.01)],
        mb110: [Some(0.01), Some(30.01), Some(24.84), Some(14.70)],
        gb1: [Some(0.1), Some(278.4), None],
        gb11: Some(0.6),
    },
    Table1Row {
        query: 8,
        mb1: [
            Some(0.014),
            Some(0.013),
            Some(0.220),
            Some(0.447),
            Some(0.660),
        ],
        mb11: [
            Some(0.04),
            Some(0.16),
            Some(0.85),
            Some(51.21),
            Some(429.89),
        ],
        mb110: [Some(0.47), Some(2.12), Some(3.51), Some(9316.72)],
        gb1: [Some(9.6), Some(49.1), None],
        gb11: Some(223.0),
    },
    Table1Row {
        query: 9,
        mb1: [
            Some(0.022),
            Some(0.113),
            Some(0.580),
            Some(0.407),
            Some(0.783),
        ],
        mb11: [
            Some(0.05),
            Some(113.23),
            Some(32.25),
            Some(47.03),
            Some(333.47),
        ],
        mb110: [Some(0.52), None, Some(12280.66), None],
        gb1: [Some(11.8), None, None],
        gb11: Some(460.0),
    },
    Table1Row {
        query: 10,
        mb1: [
            Some(0.163),
            Some(0.136),
            Some(0.500),
            Some(0.153),
            Some(16.533),
        ],
        mb11: [
            Some(2.54),
            Some(1.74),
            Some(5.28),
            Some(5.15),
            Some(1559.17),
        ],
        mb110: [Some(5.18), Some(18.61), Some(442.37), None],
        gb1: [Some(62.8), None, None],
        gb11: Some(2413.0),
    },
    Table1Row {
        query: 11,
        mb1: [
            Some(0.018),
            Some(0.042),
            Some(0.160),
            Some(1.26),
            Some(2.064),
        ],
        mb11: [
            Some(0.11),
            Some(2.62),
            Some(98.91),
            Some(121.75),
            Some(374.46),
        ],
        mb110: [Some(3.62), None, Some(19927.29), None],
        gb1: [Some(367.7), None, None],
        gb11: None,
    },
    Table1Row {
        query: 12,
        mb1: [
            Some(0.044),
            Some(0.028),
            Some(0.310),
            Some(0.486),
            Some(3.067),
        ],
        mb11: [
            Some(0.09),
            Some(1.44),
            Some(23.39),
            Some(118.70),
            Some(1584.91),
        ],
        mb110: [Some(2.11), None, Some(5100.19), None],
        gb1: [Some(121.1), None, None],
        gb11: None,
    },
    Table1Row {
        query: 13,
        mb1: [
            Some(0.022),
            Some(0.002),
            Some(0.010),
            Some(0.009),
            Some(0.008),
        ],
        mb11: [Some(0.03), Some(0.03), Some(0.10), Some(0.08), Some(0.03)],
        mb110: [Some(0.10), Some(0.66), Some(1.03), Some(0.79)],
        gb1: [Some(0.9), Some(12.9), Some(8.1)],
        gb11: Some(8.0),
    },
    Table1Row {
        query: 14,
        mb1: [
            Some(0.026),
            Some(0.109),
            Some(0.060),
            Some(0.106),
            Some(0.228),
        ],
        mb11: [Some(0.12), Some(1.92), Some(0.72), Some(1.07), Some(0.44)],
        mb110: [Some(0.93), Some(99.53), Some(11.16), Some(14.18)],
        gb1: [Some(7.5), Some(110.2), None],
        gb11: Some(452.0),
    },
    Table1Row {
        query: 15,
        mb1: [
            Some(0.026),
            Some(0.001),
            Some(0.010),
            Some(0.015),
            Some(0.015),
        ],
        mb11: [Some(0.03), Some(0.02), Some(0.03), Some(0.13), Some(0.05)],
        mb110: [Some(0.07), Some(0.20), Some(0.49), Some(1.37)],
        gb1: [Some(0.4), Some(10.6), Some(28.5)],
        gb11: Some(3.0),
    },
    Table1Row {
        query: 16,
        mb1: [
            Some(0.030),
            Some(0.003),
            Some(0.010),
            Some(0.016),
            Some(0.597),
        ],
        mb11: [Some(0.03), Some(0.03), Some(0.03), Some(0.14), Some(22.21)],
        mb110: [Some(0.08), Some(0.46), Some(0.52), Some(1.52)],
        gb1: [Some(0.5), Some(10.9), Some(17.6)],
        gb11: Some(4.0),
    },
    Table1Row {
        query: 17,
        mb1: [
            Some(0.022),
            Some(0.005),
            Some(0.010),
            Some(0.021),
            Some(0.018),
        ],
        mb11: [Some(0.03), Some(0.06), Some(0.09), Some(0.20), Some(0.18)],
        mb110: [Some(0.15), Some(0.82), Some(0.85), Some(2.08)],
        gb1: [Some(1.4), Some(11.8), Some(34.1)],
        gb11: Some(31.0),
    },
    Table1Row {
        query: 18,
        mb1: [
            Some(0.013),
            Some(0.007),
            Some(0.010),
            Some(0.020),
            Some(0.009),
        ],
        mb11: [Some(0.02), Some(0.07), Some(0.08), Some(0.19), Some(0.12)],
        mb110: [Some(0.05), Some(0.73), Some(0.64), Some(2.09)],
        gb1: [Some(0.5), Some(14.8), Some(21.7)],
        gb11: Some(7.0),
    },
    Table1Row {
        query: 19,
        mb1: [
            Some(0.029),
            Some(0.089),
            Some(0.070),
            Some(0.056),
            Some(0.037),
        ],
        mb11: [Some(0.06), Some(1.17), Some(0.67), Some(0.57), Some(0.51)],
        mb110: [Some(0.38), Some(14.73), Some(12.15), Some(6.74)],
        gb1: [Some(7.0), Some(254.5), Some(135.6)],
        gb11: Some(128.0),
    },
    Table1Row {
        query: 20,
        mb1: [
            Some(0.075),
            Some(0.030),
            Some(0.020),
            Some(0.037),
            Some(0.061),
        ],
        mb11: [Some(0.11), Some(0.28), Some(0.11), Some(0.34), Some(0.98)],
        mb110: [Some(0.62), Some(2.98), Some(1.40), Some(3.42)],
        gb1: [Some(7.0), Some(24.6), Some(37.4)],
        gb11: Some(70.0),
    },
];

/// One row of Table 2: a system from the literature with the CPU it was
/// benchmarked on and its SPECint-CPU2000 normalisation factor.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// One-letter label used in Figure 16.
    pub label: char,
    /// System name.
    pub system: &'static str,
    /// CPU description.
    pub cpu: &'static str,
    /// SPECint-CPU2000 score of that CPU.
    pub spec: u32,
    /// Normalisation factor relative to the 1.6 GHz Opteron (SPEC 1068).
    pub factor: f64,
}

/// The full Table 2 of the paper.
pub const TABLE2: [Table2Row; 19] = [
    Table2Row {
        label: 'M',
        system: "MonetDB/XQuery (MXQ)",
        cpu: "Opteron 1600",
        spec: 1068,
        factor: 1.00,
    },
    Table2Row {
        label: 'E',
        system: "eXist",
        cpu: "Opteron 1600",
        spec: 1068,
        factor: 1.00,
    },
    Table2Row {
        label: 'R',
        system: "BerkeleyDB XML 2.2 (BDB)",
        cpu: "Opteron 1600",
        spec: 1068,
        factor: 1.00,
    },
    Table2Row {
        label: 'H',
        system: "X-Hive 6.0",
        cpu: "Opteron 1600",
        spec: 1068,
        factor: 1.00,
    },
    Table2Row {
        label: 'G',
        system: "Galax 0.5.0",
        cpu: "Opteron 1600",
        spec: 1068,
        factor: 1.00,
    },
    Table2Row {
        label: 'Y',
        system: "Dynamic Interval Encoding",
        cpu: "PentiumIII 1000",
        spec: 451,
        factor: 2.36,
    },
    Table2Row {
        label: 'I',
        system: "IPSI-XQ v1.1.1b",
        cpu: "PentiumIII 1000",
        spec: 451,
        factor: 2.36,
    },
    Table2Row {
        label: 'K',
        system: "Kweelt",
        cpu: "PentiumIII 1000",
        spec: 451,
        factor: 2.36,
    },
    Table2Row {
        label: 'Q',
        system: "QuiP",
        cpu: "PentiumIII 1000",
        spec: 451,
        factor: 2.36,
    },
    Table2Row {
        label: 'D',
        system: "Pathfinder + IBM DB2 UDB V8.1",
        cpu: "Pentium4 2200",
        spec: 780,
        factor: 1.37,
    },
    Table2Row {
        label: 'F',
        system: "FluX",
        cpu: "AthlonXP 1670",
        spec: 697,
        factor: 1.53,
    },
    Table2Row {
        label: 'A',
        system: "Anonymous commercial system",
        cpu: "AthlonXP 1670",
        spec: 697,
        factor: 1.53,
    },
    Table2Row {
        label: 'X',
        system: "TurboXPath",
        cpu: "PentiumIII 700",
        spec: 332,
        factor: 3.22,
    },
    Table2Row {
        label: 'T',
        system: "Timber",
        cpu: "PentiumIII 866",
        spec: 411,
        factor: 2.60,
    },
    Table2Row {
        label: 'L',
        system: "Li",
        cpu: "PentiumIII 933",
        spec: 421,
        factor: 2.53,
    },
    Table2Row {
        label: 'Z',
        system: "Qizx/Open (0.4/p1)",
        cpu: "PentiumIII 933",
        spec: 421,
        factor: 2.53,
    },
    Table2Row {
        label: 'S',
        system: "Saxon (8.0)",
        cpu: "PentiumIII 933",
        spec: 421,
        factor: 2.53,
    },
    Table2Row {
        label: 'B',
        system: "BEA/XQRL",
        cpu: "Pentium4 1800",
        spec: 669,
        factor: 1.59,
    },
    Table2Row {
        label: 'V',
        system: "VX",
        cpu: "Pentium4 1800",
        spec: 669,
        factor: 1.59,
    },
];

/// SPEC-normalise a published elapsed time: divide it by the factor between
/// the publication's CPU and the paper's reference Opteron (Section 6,
/// "Public Experimental Results").
pub fn spec_normalize(time_secs: f64, factor: f64) -> f64 {
    time_secs / factor
}

/// Figure 16's y-value: a (SPEC-normalised) time relative to the
/// MonetDB/XQuery time for the same query and document size.
pub fn relative_to_mxq(normalized_secs: f64, mxq_secs: f64) -> f64 {
    if mxq_secs <= 0.0 {
        f64::INFINITY
    } else {
        normalized_secs / mxq_secs
    }
}

/// Convenience: the Table 1 MXQ column for a given document size label
/// (`"1.1MB"`, `"11MB"`, `"110MB"`, `"1.1GB"`, `"11GB"`).
pub fn mxq_published(size: &str) -> Vec<(usize, Secs)> {
    TABLE1
        .iter()
        .map(|r| {
            let v = match size {
                "1.1MB" => r.mb1[0],
                "11MB" => r.mb11[0],
                "110MB" => r.mb110[0],
                "1.1GB" => r.gb1[0],
                "11GB" => r.gb11,
                _ => None,
            };
            (r.query, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_twenty_queries() {
        assert_eq!(TABLE1.len(), 20);
        for (i, row) in TABLE1.iter().enumerate() {
            assert_eq!(row.query, i + 1);
            assert!(row.mb1[0].is_some(), "MXQ finished every 1.1MB query");
        }
    }

    #[test]
    fn dnf_entries_match_the_paper() {
        // Q11/Q12 at 11 GB are the only MXQ DNFs
        assert!(TABLE1[10].gb11.is_none());
        assert!(TABLE1[11].gb11.is_none());
        assert!(TABLE1[0].gb11.is_some());
        // Galax crashed on the join queries at 110 MB
        assert!(TABLE1[8].mb110[1].is_none());
    }

    #[test]
    fn spec_normalisation() {
        // a 2.36x slower CPU: published 10s counts as ~4.24s
        let n = spec_normalize(10.0, 2.36);
        assert!((n - 4.237).abs() < 0.01);
        assert!((relative_to_mxq(n, 0.42) - 10.088).abs() < 0.1);
        assert!(relative_to_mxq(1.0, 0.0).is_infinite());
    }

    #[test]
    fn table2_factors_are_consistent_with_spec_scores() {
        for row in TABLE2 {
            let expected = 1068.0 / row.spec as f64;
            assert!(
                (expected - row.factor).abs() < 0.02,
                "{}: {} vs {}",
                row.system,
                expected,
                row.factor
            );
        }
    }

    #[test]
    fn mxq_column_extraction() {
        let col = mxq_published("110MB");
        assert_eq!(col.len(), 20);
        assert_eq!(col[0], (1, Some(0.12)));
        assert!(mxq_published("bogus").iter().all(|(_, v)| v.is_none()));
    }
}
