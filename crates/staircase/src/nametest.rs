//! Node tests: kind tests and name tests applied to the nodes produced by an
//! axis step.
//!
//! A [`NodeTest`] is the symbolic form carried around in plans.  Before a
//! staircase-join scan starts, it is resolved against the target document
//! with [`NodeTest::compile`]: a name test looks up the interned qname id
//! once and every per-node check then compares two `u32` codes instead of
//! two strings — the dictionary-encoded variant of Section 3.2's
//! nametest evaluation.

use mxq_xmldb::{Document, NodeKind};
use std::sync::Arc;

/// An XPath node test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// `node()` — any node kind.
    AnyKind,
    /// `*` — any element.
    AnyElement,
    /// `name` — an element with the given name.
    Named(Arc<str>),
    /// `text()`.
    Text,
    /// `comment()`.
    Comment,
    /// `processing-instruction()` with an optional target.
    ProcessingInstruction(Option<Arc<str>>),
}

impl NodeTest {
    /// Build a name test.
    pub fn named(name: impl Into<Arc<str>>) -> Self {
        NodeTest::Named(name.into())
    }

    /// Does the node at `pre` in `doc` satisfy the test?
    pub fn matches(&self, doc: &Document, pre: u32) -> bool {
        match self {
            NodeTest::AnyKind => true,
            NodeTest::AnyElement => doc.kind(pre) == NodeKind::Element,
            NodeTest::Named(name) => {
                doc.kind(pre) == NodeKind::Element && doc.name_of(pre) == name.as_ref()
            }
            NodeTest::Text => doc.kind(pre) == NodeKind::Text,
            NodeTest::Comment => doc.kind(pre) == NodeKind::Comment,
            NodeTest::ProcessingInstruction(target) => {
                doc.kind(pre) == NodeKind::ProcessingInstruction
                    && target
                        .as_ref()
                        .map(|t| doc.name_of(pre) == t.as_ref())
                        .unwrap_or(true)
            }
        }
    }

    /// If the test is a simple name test, return the candidate list from the
    /// document's element-name index (document order).  This is the candidate
    /// list consumed by the predicate-pushdown staircase join (Section 3.2).
    pub fn candidates<'d>(&self, doc: &'d Document) -> Option<&'d [u32]> {
        match self {
            NodeTest::Named(name) => Some(doc.elements_named(name)),
            _ => None,
        }
    }

    /// Resolve the test against one document container.  A name test is
    /// translated into the container's interned qname id (or `None` when the
    /// name never occurs — such a test matches nothing), so the per-node
    /// check of the scan loops is a code comparison, not a string equality.
    pub fn compile(&self, doc: &Document) -> CompiledTest {
        match self {
            NodeTest::AnyKind => CompiledTest::AnyKind,
            NodeTest::AnyElement => CompiledTest::AnyElement,
            NodeTest::Named(name) => CompiledTest::ElementCode(doc.lookup_qname(name)),
            NodeTest::Text => CompiledTest::Text,
            NodeTest::Comment => CompiledTest::Comment,
            NodeTest::ProcessingInstruction(target) => {
                CompiledTest::ProcessingInstruction(target.clone())
            }
        }
    }
}

/// A node test resolved against one document (see [`NodeTest::compile`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledTest {
    /// `node()`.
    AnyKind,
    /// `*`.
    AnyElement,
    /// A name test resolved to the document's interned qname id; `None`
    /// means the name does not occur in the container.
    ElementCode(Option<u32>),
    /// `text()`.
    Text,
    /// `comment()`.
    Comment,
    /// `processing-instruction()` with an optional target (targets are not
    /// interned, so this one keeps the string comparison).
    ProcessingInstruction(Option<Arc<str>>),
}

impl CompiledTest {
    /// Does the node at `pre` satisfy the test?  For name tests this is a
    /// single integer comparison against the interned qname id.
    #[inline]
    pub fn matches(&self, doc: &Document, pre: u32) -> bool {
        match self {
            CompiledTest::AnyKind => true,
            CompiledTest::AnyElement => doc.kind(pre) == NodeKind::Element,
            CompiledTest::ElementCode(code) => match code {
                Some(c) => doc.qname_id(pre) == Some(*c),
                None => false,
            },
            CompiledTest::Text => doc.kind(pre) == NodeKind::Text,
            CompiledTest::Comment => doc.kind(pre) == NodeKind::Comment,
            CompiledTest::ProcessingInstruction(target) => {
                doc.kind(pre) == NodeKind::ProcessingInstruction
                    && target
                        .as_ref()
                        .map(|t| doc.name_of(pre) == t.as_ref())
                        .unwrap_or(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_xmldb::shred::{shred, ShredOptions};

    fn doc() -> Document {
        shred(
            "t",
            "<a><b>text</b><!--c--><b/><p/></a>",
            &ShredOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn kind_and_name_tests() {
        let d = doc();
        assert!(NodeTest::AnyKind.matches(&d, 2));
        assert!(NodeTest::AnyElement.matches(&d, 1));
        assert!(!NodeTest::AnyElement.matches(&d, 2));
        assert!(NodeTest::named("b").matches(&d, 1));
        assert!(!NodeTest::named("b").matches(&d, 5));
        assert!(NodeTest::Text.matches(&d, 2));
        assert!(NodeTest::Comment.matches(&d, 3));
    }

    #[test]
    fn compiled_tests_agree_with_symbolic_tests() {
        let d = doc();
        let tests = [
            NodeTest::AnyKind,
            NodeTest::AnyElement,
            NodeTest::named("b"),
            NodeTest::named("zzz"),
            NodeTest::Text,
            NodeTest::Comment,
        ];
        for t in &tests {
            let c = t.compile(&d);
            for pre in 0..d.len() as u32 {
                assert_eq!(t.matches(&d, pre), c.matches(&d, pre), "{t:?} at {pre}");
            }
        }
        // a name test on an absent name resolves to a never-matching code
        assert_eq!(
            NodeTest::named("zzz").compile(&d),
            CompiledTest::ElementCode(None)
        );
    }

    #[test]
    fn candidate_lists_come_from_name_index() {
        let d = doc();
        let cands = NodeTest::named("b").candidates(&d).unwrap();
        assert_eq!(cands, &[1, 4]);
        assert!(NodeTest::AnyElement.candidates(&d).is_none());
        assert_eq!(
            NodeTest::named("zzz").candidates(&d).unwrap(),
            &[] as &[u32]
        );
    }
}
