//! Node tests: kind tests and name tests applied to the nodes produced by an
//! axis step.
//!
//! A [`NodeTest`] is the symbolic form carried around in plans.  Before a
//! staircase-join scan starts, it is resolved against the target container
//! with [`NodeTest::compile`]: a name test looks up the interned qname id
//! once and every per-node check then compares two `u32` codes instead of
//! two strings — the dictionary-encoded variant of Section 3.2's
//! nametest evaluation.  Compiled tests also answer the *run-level*
//! question ([`CompiledTest::may_match_run`]): can any node of the storage
//! run (logical page) containing a position match?  The paged store's
//! per-page summaries make that a set lookup, letting the sweeps skip
//! whole pages.

use mxq_xmldb::{NodeKind, NodeRead};
use std::sync::Arc;

/// An XPath node test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// `node()` — any node kind.
    AnyKind,
    /// `*` — any element.
    AnyElement,
    /// `name` — an element with the given name.
    Named(Arc<str>),
    /// `text()`.
    Text,
    /// `comment()`.
    Comment,
    /// `processing-instruction()` with an optional target.
    ProcessingInstruction(Option<Arc<str>>),
}

impl NodeTest {
    /// Build a name test.
    pub fn named(name: impl Into<Arc<str>>) -> Self {
        NodeTest::Named(name.into())
    }

    /// Does the node at `pre` in `doc` satisfy the test?
    pub fn matches<D: NodeRead>(&self, doc: &D, pre: u32) -> bool {
        match self {
            NodeTest::AnyKind => true,
            NodeTest::AnyElement => doc.kind(pre) == NodeKind::Element,
            NodeTest::Named(name) => {
                doc.kind(pre) == NodeKind::Element && doc.name_of(pre) == name.as_ref()
            }
            NodeTest::Text => doc.kind(pre) == NodeKind::Text,
            NodeTest::Comment => doc.kind(pre) == NodeKind::Comment,
            NodeTest::ProcessingInstruction(target) => {
                doc.kind(pre) == NodeKind::ProcessingInstruction
                    && target
                        .as_ref()
                        .map(|t| doc.name_of(pre) == t.as_ref())
                        .unwrap_or(true)
            }
        }
    }

    /// If the test is a simple name test, return the candidate list from the
    /// container's element-name index (document order).  This is the candidate
    /// list consumed by the predicate-pushdown staircase join (Section 3.2);
    /// the paged store serves it from its per-page name buckets.
    pub fn candidates<D: NodeRead>(&self, doc: &D) -> Option<Vec<u32>> {
        match self {
            NodeTest::Named(name) => doc.named_elements(name),
            _ => None,
        }
    }

    /// Resolve the test against one container.  A name test is translated
    /// into the container's interned qname id (or `None` when the name never
    /// occurs — such a test matches nothing), so the per-node check of the
    /// scan loops is a code comparison, not a string equality.
    pub fn compile<D: NodeRead>(&self, doc: &D) -> CompiledTest {
        match self {
            NodeTest::AnyKind => CompiledTest::AnyKind,
            NodeTest::AnyElement => CompiledTest::AnyElement,
            NodeTest::Named(name) => CompiledTest::Element {
                code: doc.lookup_qname(name),
                name: name.clone(),
            },
            NodeTest::Text => CompiledTest::Text,
            NodeTest::Comment => CompiledTest::Comment,
            NodeTest::ProcessingInstruction(target) => {
                CompiledTest::ProcessingInstruction(target.clone())
            }
        }
    }
}

/// A node test resolved against one container (see [`NodeTest::compile`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledTest {
    /// `node()`.
    AnyKind,
    /// `*`.
    AnyElement,
    /// A name test resolved to the container's interned qname id; a `None`
    /// code means the name does not occur in the container.  The name is
    /// kept for the run-level summary checks (summaries are keyed by
    /// string, which stays stable across dictionary growth).
    Element {
        /// The interned qname id, if the name occurs at all.
        code: Option<u32>,
        /// The tested element name.
        name: Arc<str>,
    },
    /// `text()`.
    Text,
    /// `comment()`.
    Comment,
    /// `processing-instruction()` with an optional target (targets are not
    /// interned, so this one keeps the string comparison).
    ProcessingInstruction(Option<Arc<str>>),
}

impl CompiledTest {
    /// Does the node at `pre` satisfy the test?  For name tests this is a
    /// single integer comparison against the interned qname id.
    #[inline]
    pub fn matches<D: NodeRead>(&self, doc: &D, pre: u32) -> bool {
        match self {
            CompiledTest::AnyKind => true,
            CompiledTest::AnyElement => doc.kind(pre) == NodeKind::Element,
            CompiledTest::Element { code, .. } => match code {
                Some(c) => doc.qname_id(pre) == Some(*c),
                None => false,
            },
            CompiledTest::Text => doc.kind(pre) == NodeKind::Text,
            CompiledTest::Comment => doc.kind(pre) == NodeKind::Comment,
            CompiledTest::ProcessingInstruction(target) => {
                doc.kind(pre) == NodeKind::ProcessingInstruction
                    && target
                        .as_ref()
                        .map(|t| doc.name_of(pre) == t.as_ref())
                        .unwrap_or(true)
            }
        }
    }

    /// May *any* node of the storage run (logical page) containing `pre`
    /// match the test?  `false` is a guarantee — the sweep skips the whole
    /// run; `true` only means "scan it".  On a flat document this is
    /// constant `true` (one run, no summaries).
    #[inline]
    pub fn may_match_run<D: NodeRead>(&self, doc: &D, pre: u32) -> bool {
        match self {
            CompiledTest::AnyKind => true,
            CompiledTest::AnyElement => doc.run_has_kind(pre, NodeKind::Element),
            CompiledTest::Element { code, name } => code.is_some() && doc.run_has_name(pre, name),
            CompiledTest::Text => doc.run_has_kind(pre, NodeKind::Text),
            CompiledTest::Comment => doc.run_has_kind(pre, NodeKind::Comment),
            CompiledTest::ProcessingInstruction(_) => {
                doc.run_has_kind(pre, NodeKind::ProcessingInstruction)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_xmldb::shred::{shred, ShredOptions};
    use mxq_xmldb::Document;

    fn doc() -> Document {
        shred(
            "t",
            "<a><b>text</b><!--c--><b/><p/></a>",
            &ShredOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn kind_and_name_tests() {
        let d = doc();
        assert!(NodeTest::AnyKind.matches(&d, 2));
        assert!(NodeTest::AnyElement.matches(&d, 1));
        assert!(!NodeTest::AnyElement.matches(&d, 2));
        assert!(NodeTest::named("b").matches(&d, 1));
        assert!(!NodeTest::named("b").matches(&d, 5));
        assert!(NodeTest::Text.matches(&d, 2));
        assert!(NodeTest::Comment.matches(&d, 3));
    }

    #[test]
    fn compiled_tests_agree_with_symbolic_tests() {
        let d = doc();
        let tests = [
            NodeTest::AnyKind,
            NodeTest::AnyElement,
            NodeTest::named("b"),
            NodeTest::named("zzz"),
            NodeTest::Text,
            NodeTest::Comment,
        ];
        for t in &tests {
            let c = t.compile(&d);
            for pre in 0..d.len() as u32 {
                assert_eq!(t.matches(&d, pre), c.matches(&d, pre), "{t:?} at {pre}");
                // on a flat document a run never rules itself out unless the
                // name is absent from the container entirely
                if t.matches(&d, pre) {
                    assert!(c.may_match_run(&d, pre));
                }
            }
        }
        // a name test on an absent name resolves to a never-matching code
        assert!(matches!(
            NodeTest::named("zzz").compile(&d),
            CompiledTest::Element { code: None, .. }
        ));
        assert!(!NodeTest::named("zzz").compile(&d).may_match_run(&d, 0));
    }

    #[test]
    fn candidate_lists_come_from_name_index() {
        let d = doc();
        let cands = NodeTest::named("b").candidates(&d).unwrap();
        assert_eq!(cands, vec![1, 4]);
        assert!(NodeTest::AnyElement.candidates(&d).is_none());
        assert_eq!(
            NodeTest::named("zzz").candidates(&d).unwrap(),
            Vec::<u32>::new()
        );
    }
}
