//! Node tests: kind tests and name tests applied to the nodes produced by an
//! axis step.

use mxq_xmldb::{Document, NodeKind};
use std::sync::Arc;

/// An XPath node test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// `node()` — any node kind.
    AnyKind,
    /// `*` — any element.
    AnyElement,
    /// `name` — an element with the given name.
    Named(Arc<str>),
    /// `text()`.
    Text,
    /// `comment()`.
    Comment,
    /// `processing-instruction()` with an optional target.
    ProcessingInstruction(Option<Arc<str>>),
}

impl NodeTest {
    /// Build a name test.
    pub fn named(name: impl Into<Arc<str>>) -> Self {
        NodeTest::Named(name.into())
    }

    /// Does the node at `pre` in `doc` satisfy the test?
    pub fn matches(&self, doc: &Document, pre: u32) -> bool {
        match self {
            NodeTest::AnyKind => true,
            NodeTest::AnyElement => doc.kind(pre) == NodeKind::Element,
            NodeTest::Named(name) => {
                doc.kind(pre) == NodeKind::Element && doc.name_of(pre) == name.as_ref()
            }
            NodeTest::Text => doc.kind(pre) == NodeKind::Text,
            NodeTest::Comment => doc.kind(pre) == NodeKind::Comment,
            NodeTest::ProcessingInstruction(target) => {
                doc.kind(pre) == NodeKind::ProcessingInstruction
                    && target
                        .as_ref()
                        .map(|t| doc.name_of(pre) == t.as_ref())
                        .unwrap_or(true)
            }
        }
    }

    /// If the test is a simple name test, return the candidate list from the
    /// document's element-name index (document order).  This is the candidate
    /// list consumed by the predicate-pushdown staircase join (Section 3.2).
    pub fn candidates<'d>(&self, doc: &'d Document) -> Option<&'d [u32]> {
        match self {
            NodeTest::Named(name) => Some(doc.elements_named(name)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_xmldb::shred::{shred, ShredOptions};

    fn doc() -> Document {
        shred(
            "t",
            "<a><b>text</b><!--c--><b/><p/></a>",
            &ShredOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn kind_and_name_tests() {
        let d = doc();
        assert!(NodeTest::AnyKind.matches(&d, 2));
        assert!(NodeTest::AnyElement.matches(&d, 1));
        assert!(!NodeTest::AnyElement.matches(&d, 2));
        assert!(NodeTest::named("b").matches(&d, 1));
        assert!(!NodeTest::named("b").matches(&d, 5));
        assert!(NodeTest::Text.matches(&d, 2));
        assert!(NodeTest::Comment.matches(&d, 3));
    }

    #[test]
    fn candidate_lists_come_from_name_index() {
        let d = doc();
        let cands = NodeTest::named("b").candidates(&d).unwrap();
        assert_eq!(cands, &[1, 4]);
        assert!(NodeTest::AnyElement.candidates(&d).is_none());
        assert_eq!(
            NodeTest::named("zzz").candidates(&d).unwrap(),
            &[] as &[u32]
        );
    }
}
