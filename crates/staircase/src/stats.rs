//! Scan statistics recorded by the staircase join implementations.

/// Counters describing how much work an axis step did.
///
/// The paper's claim (Section 3) is that the loop-lifted staircase join never
/// touches more than `|result| + |context|` nodes of the document encoding;
/// property tests assert this bound using these counters, and the
/// `staircase_micro` bench reports them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Document-encoding rows examined (including context nodes themselves).
    pub nodes_scanned: u64,
    /// Context entries consumed.
    pub contexts: u64,
    /// Result tuples emitted.
    pub results: u64,
    /// Number of sequential passes over the document table (1 for the
    /// loop-lifted variant, one per iteration for the iterative variant).
    pub passes: u64,
    /// Whole storage runs (logical pages) skipped because their summary
    /// proved no node in them could match the node test (paged store only;
    /// a flat document is one unskippable run).
    pub pages_skipped: u64,
}

impl ScanStats {
    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = ScanStats::default();
    }

    /// Merge another statistics record into this one.
    pub fn merge(&mut self, other: &ScanStats) {
        self.nodes_scanned += other.nodes_scanned;
        self.contexts += other.contexts;
        self.results += other.results;
        self.passes += other.passes;
        self.pages_skipped += other.pages_skipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_reset() {
        let mut a = ScanStats {
            nodes_scanned: 5,
            contexts: 2,
            results: 3,
            passes: 1,
            pages_skipped: 0,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.nodes_scanned, 10);
        assert_eq!(a.passes, 2);
        a.reset();
        assert_eq!(a, ScanStats::default());
    }
}
