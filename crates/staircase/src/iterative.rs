//! The plain (iterative) staircase join: evaluates one XPath location step
//! for a *single* context node sequence.
//!
//! This is the algorithm of \[19\] with its three techniques — pruning,
//! partitioning and skipping (Figures 1–3 of the paper).  Inside an XQuery
//! for-loop it must be invoked once per iteration, performing one sequential
//! pass over the document encoding each time; the loop-lifted variant in
//! [`crate::looplifted`] removes exactly this overhead (Figure 12).

use mxq_xmldb::NodeRead;

use crate::axis::Axis;
use crate::nametest::{CompiledTest, NodeTest};
use crate::stats::ScanStats;

/// Evaluate one location step for a single context node sequence.
///
/// The context is a set of preorder ranks (any order, duplicates allowed);
/// the result is duplicate free and in document order, as required by XPath.
pub fn staircase_step<D: NodeRead>(
    doc: &D,
    ctx: &[u32],
    axis: Axis,
    test: &NodeTest,
    stats: &mut ScanStats,
) -> Vec<u32> {
    stats.passes += 1;
    stats.contexts += ctx.len() as u64;
    let mut ctx: Vec<u32> = ctx.to_vec();
    ctx.sort_unstable();
    ctx.dedup();
    if ctx.is_empty() {
        return Vec::new();
    }
    // resolve the node test once: name tests become qname-id comparisons
    let test = &test.compile(doc);
    let mut result = match axis {
        Axis::Child => child(doc, &ctx, test, stats),
        Axis::Descendant => descendant(doc, &ctx, test, stats, false),
        Axis::DescendantOrSelf => descendant(doc, &ctx, test, stats, true),
        Axis::SelfAxis => self_axis(doc, &ctx, test, stats),
        Axis::Parent => parent(doc, &ctx, test, stats),
        Axis::Ancestor => ancestor(doc, &ctx, test, stats, false),
        Axis::AncestorOrSelf => ancestor(doc, &ctx, test, stats, true),
        Axis::Following => following(doc, &ctx, test, stats),
        Axis::Preceding => preceding(doc, &ctx, test, stats),
        Axis::FollowingSibling => siblings(doc, &ctx, test, stats, true),
        Axis::PrecedingSibling => siblings(doc, &ctx, test, stats, false),
        Axis::Attribute => Vec::new(),
    };
    result.sort_unstable();
    result.dedup();
    stats.results += result.len() as u64;
    result
}

/// Prune context nodes covered by (i.e. inside the subtree of) another
/// context node — Figure 1.  `ctx` must be sorted ascending.
pub fn prune_covered<D: NodeRead>(doc: &D, ctx: &[u32]) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::with_capacity(ctx.len());
    let mut cover_end: Option<u32> = None;
    for &c in ctx {
        match cover_end {
            Some(end) if c <= end => continue,
            _ => {
                cover_end = Some(c + doc.size(c));
                out.push(c);
            }
        }
    }
    out
}

fn child<D: NodeRead>(
    doc: &D,
    ctx: &[u32],
    test: &CompiledTest,
    stats: &mut ScanStats,
) -> Vec<u32> {
    let mut out = Vec::new();
    for &c in ctx {
        for v in doc.children(c) {
            stats.nodes_scanned += 1;
            if test.matches(doc, v) {
                out.push(v);
            }
        }
    }
    out
}

fn descendant<D: NodeRead>(
    doc: &D,
    ctx: &[u32],
    test: &CompiledTest,
    stats: &mut ScanStats,
    or_self: bool,
) -> Vec<u32> {
    // Pruning makes the remaining subtree ranges disjoint; scanning them in
    // order yields document order directly, skipping everything in between.
    // Within a range, whole storage runs (logical pages) whose summary rules
    // out the test are skipped without touching a node.
    let pruned = prune_covered(doc, ctx);
    let mut out = Vec::new();
    for &c in &pruned {
        let mut v = if or_self { c } else { c + 1 };
        let end = c + doc.size(c);
        while v <= end {
            let run_end = doc.run_end(v).min(end);
            if !test.may_match_run(doc, v) {
                stats.pages_skipped += 1;
                v = run_end + 1;
                continue;
            }
            while v <= run_end {
                stats.nodes_scanned += 1;
                if test.matches(doc, v) {
                    out.push(v);
                }
                v += 1;
            }
        }
    }
    if or_self {
        // context nodes pruned away are still their own descendant-or-self
        for &c in ctx {
            if test.matches(doc, c) {
                out.push(c);
            }
        }
    }
    out
}

fn self_axis<D: NodeRead>(
    doc: &D,
    ctx: &[u32],
    test: &CompiledTest,
    stats: &mut ScanStats,
) -> Vec<u32> {
    stats.nodes_scanned += ctx.len() as u64;
    ctx.iter()
        .copied()
        .filter(|&c| test.matches(doc, c))
        .collect()
}

fn parent<D: NodeRead>(
    doc: &D,
    ctx: &[u32],
    test: &CompiledTest,
    stats: &mut ScanStats,
) -> Vec<u32> {
    let mut out = Vec::new();
    for &c in ctx {
        if let Some(p) = doc.parent(c) {
            stats.nodes_scanned += 1;
            if test.matches(doc, p) {
                out.push(p);
            }
        }
    }
    out
}

fn ancestor<D: NodeRead>(
    doc: &D,
    ctx: &[u32],
    test: &CompiledTest,
    stats: &mut ScanStats,
    or_self: bool,
) -> Vec<u32> {
    let mut out = Vec::new();
    for &c in ctx {
        if or_self && test.matches(doc, c) {
            out.push(c);
        }
        let mut cur = c;
        while let Some(p) = doc.parent(cur) {
            stats.nodes_scanned += 1;
            if test.matches(doc, p) {
                out.push(p);
            }
            cur = p;
        }
    }
    out
}

fn following<D: NodeRead>(
    doc: &D,
    ctx: &[u32],
    test: &CompiledTest,
    stats: &mut ScanStats,
) -> Vec<u32> {
    // Partitioning (Figure 2): the context node with the smallest
    // pre + size boundary covers the whole following region of the set.
    let boundary = ctx.iter().map(|&c| c + doc.size(c)).min().unwrap();
    let mut out = Vec::new();
    let end = doc.len() as u32 - 1;
    let mut v = boundary + 1;
    while v <= end {
        let run_end = doc.run_end(v);
        if !test.may_match_run(doc, v) {
            stats.pages_skipped += 1;
            v = run_end + 1;
            continue;
        }
        while v <= run_end {
            stats.nodes_scanned += 1;
            if test.matches(doc, v) {
                out.push(v);
            }
            v += 1;
        }
    }
    out
}

fn preceding<D: NodeRead>(
    doc: &D,
    ctx: &[u32],
    test: &CompiledTest,
    stats: &mut ScanStats,
) -> Vec<u32> {
    // The context node with the largest pre covers the whole preceding
    // region; ancestors (subtree still open at that pre) are excluded.
    let boundary = *ctx.iter().max().unwrap();
    let mut out = Vec::new();
    let mut v = 0u32;
    while v < boundary {
        // runs that cannot match contribute nothing (the ancestor check
        // below only gates emission), so they are skipped wholesale
        if !test.may_match_run(doc, v) {
            stats.pages_skipped += 1;
            v = (doc.run_end(v) + 1).min(boundary);
            continue;
        }
        stats.nodes_scanned += 1;
        if v + doc.size(v) < boundary {
            if test.matches(doc, v) {
                out.push(v);
            }
            v += 1;
        } else {
            // v is an ancestor of the boundary node: its subtree may still
            // contain preceding nodes, so descend (do not skip the subtree).
            v += 1;
        }
    }
    out
}

fn siblings<D: NodeRead>(
    doc: &D,
    ctx: &[u32],
    test: &CompiledTest,
    stats: &mut ScanStats,
    following: bool,
) -> Vec<u32> {
    let mut out = Vec::new();
    for &c in ctx {
        let Some(p) = doc.parent(c) else { continue };
        for v in doc.children(p) {
            stats.nodes_scanned += 1;
            let keep = if following { v > c } else { v < c };
            if keep && test.matches(doc, v) {
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxq_xmldb::shred::{shred, ShredOptions};
    use mxq_xmldb::Document;

    /// The Figure 4 document: <a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>
    fn fig4() -> Document {
        shred(
            "fig4",
            "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>",
            &ShredOptions::default(),
        )
        .unwrap()
    }

    fn step(doc: &Document, ctx: &[u32], axis: Axis) -> Vec<u32> {
        let mut stats = ScanStats::default();
        staircase_step(doc, ctx, axis, &NodeTest::AnyKind, &mut stats)
    }

    #[test]
    fn descendant_with_pruning() {
        let d = fig4();
        // (c, e, f, i)/descendant — e and i are covered by c and f (Figure 1 analogue)
        let res = step(&d, &[2, 4, 5, 8], Axis::Descendant);
        assert_eq!(res, vec![3, 4, 6, 7, 8, 9]);
    }

    #[test]
    fn ancestor_results() {
        let d = fig4();
        // (c,e,f,i)/ancestor = {a, b, c, f, h}
        let res = step(&d, &[2, 4, 5, 8], Axis::Ancestor);
        assert_eq!(res, vec![0, 1, 2, 5, 7]);
    }

    #[test]
    fn child_axis_uses_skipping() {
        let d = fig4();
        let mut stats = ScanStats::default();
        let res = staircase_step(&d, &[0, 5], Axis::Child, &NodeTest::AnyKind, &mut stats);
        assert_eq!(res, vec![1, 5, 6, 7]);
        // children only: b,f for a and g,h for f — exactly 4 nodes scanned
        assert_eq!(stats.nodes_scanned, 4);
    }

    #[test]
    fn following_and_preceding() {
        let d = fig4();
        // (c,g,i)/following (Figure 2): following(c)={f,g,h,i,j}, following(g)={h,i,j}, following(i)={j}
        let res = step(&d, &[2, 6, 8], Axis::Following);
        assert_eq!(res, vec![5, 6, 7, 8, 9]);
        // preceding of {e(4), g(6)}: preceding(g) = {b,c,d,e} ∪ preceding(e)={d}
        let res = step(&d, &[4, 6], Axis::Preceding);
        assert_eq!(res, vec![1, 2, 3, 4]);
    }

    #[test]
    fn parent_self_and_siblings() {
        let d = fig4();
        assert_eq!(step(&d, &[3, 4, 8], Axis::Parent), vec![2, 7]);
        assert_eq!(step(&d, &[3, 4], Axis::SelfAxis), vec![3, 4]);
        assert_eq!(step(&d, &[1], Axis::FollowingSibling), vec![5]);
        assert_eq!(step(&d, &[9], Axis::PrecedingSibling), vec![8]);
        assert_eq!(step(&d, &[0], Axis::Ancestor), Vec::<u32>::new());
    }

    #[test]
    fn descendant_or_self_and_nametest() {
        let d = fig4();
        let mut stats = ScanStats::default();
        let res = staircase_step(
            &d,
            &[7],
            Axis::DescendantOrSelf,
            &NodeTest::AnyKind,
            &mut stats,
        );
        assert_eq!(res, vec![7, 8, 9]);
        let res = staircase_step(
            &d,
            &[0],
            Axis::Descendant,
            &NodeTest::named("h"),
            &mut stats,
        );
        assert_eq!(res, vec![7]);
    }

    #[test]
    fn pruning_helper() {
        let d = fig4();
        assert_eq!(prune_covered(&d, &[2, 4, 5, 8]), vec![2, 5]);
        assert_eq!(prune_covered(&d, &[0, 1, 2, 3]), vec![0]);
    }

    #[test]
    fn empty_context_yields_empty_result() {
        let d = fig4();
        assert!(step(&d, &[], Axis::Descendant).is_empty());
    }
}
