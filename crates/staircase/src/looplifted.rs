//! The loop-lifted staircase join (Section 3 of the paper).
//!
//! The context is the relational encoding of *all* context node sequences of
//! all iterations of the enclosing for-loops: a set of `(iter, pre)` pairs,
//! processed in `(pre, iter)` order so that context nodes appear in document
//! order and, per context node, all interested iterations appear clustered.
//!
//! Compared to the plain staircase join:
//!
//! * **pruning** removes a context pair only when it is covered by an earlier
//!   context node *of the same iteration*;
//! * **partitioning** is implemented with a stack of active context nodes,
//!   each annotated with the iterations it is active for (Figure 6);
//! * **skipping** is unchanged — the algorithms below touch at most
//!   `|result| + |context|` rows of the document encoding and keep a strictly
//!   forward (or strictly backward, for reverse axes) access pattern.

use std::collections::HashSet;

use mxq_xmldb::NodeRead;

use crate::axis::Axis;
use crate::nametest::{CompiledTest, NodeTest};
use crate::stats::ScanStats;

/// A context pair: (iteration number, preorder rank).
pub type CtxPair = (i64, u32);

/// Evaluate one location step for all iterations at once.
///
/// The result contains, for every iteration, the duplicate-free set of result
/// nodes of that iteration; it is returned sorted by `(pre, iter)` (document
/// order, iterations clustered per node), mirroring the emission order of the
/// algorithm in Figure 6.
pub fn looplifted_step<D: NodeRead>(
    doc: &D,
    ctx: &[CtxPair],
    axis: Axis,
    test: &NodeTest,
    stats: &mut ScanStats,
) -> Vec<CtxPair> {
    stats.passes += 1;
    stats.contexts += ctx.len() as u64;
    let groups = group_by_pre(ctx);
    if groups.is_empty() {
        return Vec::new();
    }
    // resolve the node test once: name tests become qname-id comparisons
    let test = &test.compile(doc);
    let mut result = match axis {
        Axis::Child => ll_child(doc, &groups, test, stats),
        Axis::Descendant => ll_descendant(doc, ctx, test, stats, false),
        Axis::DescendantOrSelf => ll_descendant(doc, ctx, test, stats, true),
        Axis::SelfAxis => ctx
            .iter()
            .copied()
            .filter(|&(_, p)| {
                stats.nodes_scanned += 1;
                test.matches(doc, p)
            })
            .collect(),
        Axis::Parent => ll_parent(doc, &groups, test, stats),
        Axis::Ancestor => ll_ancestor(doc, &groups, test, stats, false),
        Axis::AncestorOrSelf => ll_ancestor(doc, &groups, test, stats, true),
        Axis::Following => ll_following(doc, ctx, test, stats),
        Axis::Preceding => ll_preceding(doc, ctx, test, stats),
        Axis::FollowingSibling => ll_siblings(doc, &groups, test, stats, true),
        Axis::PrecedingSibling => ll_siblings(doc, &groups, test, stats, false),
        Axis::Attribute => Vec::new(),
    };
    dedup_per_iter(&mut result);
    stats.results += result.len() as u64;
    result
}

/// The nametest/predicate-pushdown variant of Section 3.2: instead of
/// scanning the document encoding, the step consumes a *candidate list* (in
/// document order, typically produced by the element-name index) and emits
/// only candidates reachable through the axis, skipping whole candidate
/// ranges with binary search.
pub fn looplifted_step_candidates<D: NodeRead>(
    doc: &D,
    ctx: &[CtxPair],
    axis: Axis,
    candidates: &[u32],
    stats: &mut ScanStats,
) -> Vec<CtxPair> {
    stats.passes += 1;
    stats.contexts += ctx.len() as u64;
    // pruning only applies to the recursive axes: a covered context node still
    // contributes its own children for the child axis
    let prepared: Vec<CtxPair> = match axis {
        Axis::Descendant | Axis::DescendantOrSelf => prune_per_iter(doc, ctx),
        _ => ctx.to_vec(),
    };
    let groups = group_by_pre(&prepared);
    let mut out: Vec<CtxPair> = Vec::new();
    match axis {
        Axis::Descendant | Axis::DescendantOrSelf | Axis::Child => {
            for (pre, iters) in &groups {
                let lo = if axis == Axis::DescendantOrSelf {
                    *pre
                } else {
                    *pre + 1
                };
                let hi = *pre + doc.size(*pre);
                let start = candidates.partition_point(|&c| c < lo);
                let end = candidates.partition_point(|&c| c <= hi);
                for &cand in &candidates[start..end] {
                    stats.nodes_scanned += 1;
                    if axis == Axis::Child && doc.level(cand) != doc.level(*pre) + 1 {
                        continue;
                    }
                    for &it in iters {
                        out.push((it, cand));
                    }
                }
            }
        }
        _ => {
            // other axes fall back to the scanning variant plus a post filter
            let cand_set: HashSet<u32> = candidates.iter().copied().collect();
            out = looplifted_step(doc, ctx, axis, &NodeTest::AnyKind, stats)
                .into_iter()
                .filter(|(_, p)| cand_set.contains(p))
                .collect();
        }
    }
    dedup_per_iter(&mut out);
    stats.results += out.len() as u64;
    out
}

/// Group context pairs by preorder rank: `(pre, iters)` with `pre` ascending
/// and each iteration list sorted.
fn group_by_pre(ctx: &[CtxPair]) -> Vec<(u32, Vec<i64>)> {
    let mut sorted: Vec<CtxPair> = ctx.to_vec();
    sorted.sort_unstable_by_key(|&(it, p)| (p, it));
    sorted.dedup();
    let mut groups: Vec<(u32, Vec<i64>)> = Vec::new();
    for (it, p) in sorted {
        match groups.last_mut() {
            Some((gp, iters)) if *gp == p => iters.push(it),
            _ => groups.push((p, vec![it])),
        }
    }
    groups
}

/// Per-iteration pruning: drop a context pair when an earlier context node of
/// the *same* iteration already covers it (Section 3, technique (i)).
pub fn prune_per_iter<D: NodeRead>(doc: &D, ctx: &[CtxPair]) -> Vec<CtxPair> {
    let mut sorted: Vec<CtxPair> = ctx.to_vec();
    sorted.sort_unstable_by_key(|&(it, p)| (p, it));
    sorted.dedup();
    let mut cover: std::collections::HashMap<i64, u32> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(sorted.len());
    for (it, p) in sorted {
        match cover.get(&it) {
            Some(&end) if p <= end => continue,
            _ => {
                cover.insert(it, p + doc.size(p));
                out.push((it, p));
            }
        }
    }
    out
}

fn dedup_per_iter(result: &mut Vec<CtxPair>) {
    // the sweep algorithms emit in ascending (pre, iter) order whenever the
    // context regions are disjoint; detect that and skip the sort
    let sorted = result
        .windows(2)
        .all(|w| (w[0].1, w[0].0) <= (w[1].1, w[1].0));
    if !sorted {
        result.sort_unstable_by_key(|&(it, p)| (p, it));
    }
    result.dedup();
}

/// Loop-lifted child step — the algorithm of Figure 6.
fn ll_child<D: NodeRead>(
    doc: &D,
    groups: &[(u32, Vec<i64>)],
    test: &CompiledTest,
    stats: &mut ScanStats,
) -> Vec<CtxPair> {
    struct Active {
        /// end of scope: last preorder rank inside the context's subtree
        eos: u32,
        /// next child to process
        nxt_child: u32,
        /// iterations this context node is active for
        iters: Vec<i64>,
    }

    let mut result: Vec<CtxPair> = Vec::new();
    let mut active: Vec<Active> = Vec::new();
    let mut next_ctx = 0usize;

    // emit the children of the top-of-stack context up to and including `until`
    let inner_loop_child =
        |top: &mut Active, until: u32, result: &mut Vec<CtxPair>, stats: &mut ScanStats| {
            let mut v = top.nxt_child;
            while v <= until && v <= top.eos {
                stats.nodes_scanned += 1;
                if test.matches(doc, v) {
                    for &it in &top.iters {
                        result.push((it, v));
                    }
                }
                v = v + doc.size(v) + 1; // skip the child's subtree (skipping)
            }
            top.nxt_child = v;
        };

    let push_ctx = |groups: &[(u32, Vec<i64>)],
                    idx: usize,
                    active: &mut Vec<Active>,
                    stats: &mut ScanStats| {
        let (pre, iters) = &groups[idx];
        stats.nodes_scanned += 1; // the context node itself is inspected
        active.push(Active {
            eos: *pre + doc.size(*pre),
            nxt_child: *pre + 1,
            iters: iters.clone(),
        });
    };

    while next_ctx < groups.len() {
        if active.is_empty() {
            push_ctx(groups, next_ctx, &mut active, stats); // 1
            next_ctx += 1;
        } else {
            let next_pre = groups[next_ctx].0;
            let top_eos = active.last().unwrap().eos;
            if next_pre <= top_eos {
                // next context is a descendant of the current one
                let top = active.last_mut().unwrap();
                inner_loop_child(top, next_pre, &mut result, stats); // 2
                push_ctx(groups, next_ctx, &mut active, stats); // 3
                next_ctx += 1;
            } else {
                let mut top = active.pop().unwrap();
                let eos = top.eos;
                inner_loop_child(&mut top, eos, &mut result, stats); // 4, 5
            }
        }
    }
    while let Some(mut top) = active.pop() {
        let eos = top.eos;
        inner_loop_child(&mut top, eos, &mut result, stats); // 6, 7
    }
    result
}

/// Loop-lifted descendant / descendant-or-self step: a single forward sweep
/// with a stack of open context regions annotated with their iterations.
fn ll_descendant<D: NodeRead>(
    doc: &D,
    ctx: &[CtxPair],
    test: &CompiledTest,
    stats: &mut ScanStats,
    or_self: bool,
) -> Vec<CtxPair> {
    let pruned = prune_per_iter(doc, ctx);
    let groups = group_by_pre(&pruned);
    let mut result: Vec<CtxPair> = Vec::new();
    // self contribution (pruned contexts of the same iter are still their own
    // descendant-or-self result; use the unpruned context for that)
    if or_self {
        for &(it, p) in ctx {
            if test.matches(doc, p) {
                result.push((it, p));
            }
        }
    }

    // Fast path: after per-iteration pruning the context regions are often
    // pairwise disjoint (sibling subtrees — the shape of every XMark
    // tag-test step).  Each region then has exactly one open context, so the
    // partitioning stack degenerates and the scan is a plain sweep over the
    // subtree ranges, emitted directly in (pre, iter) order.
    let disjoint = groups
        .windows(2)
        .all(|w| w[0].0 + doc.size(w[0].0) < w[1].0);
    if disjoint {
        for (pre, iters) in &groups {
            let end = pre + doc.size(*pre);
            stats.nodes_scanned += 1; // the context node itself
                                      // per-page sortedness: whole storage runs whose summary rules
                                      // out the test are skipped without touching a node (the
                                      // page-level bookkeeping of Section 5.2)
            let mut v = pre + 1;
            while v <= end {
                let run_end = doc.run_end(v).min(end);
                if !test.may_match_run(doc, v) {
                    stats.pages_skipped += 1;
                    v = run_end + 1;
                    continue;
                }
                while v <= run_end {
                    stats.nodes_scanned += 1;
                    if test.matches(doc, v) {
                        for &it in iters {
                            result.push((it, v));
                        }
                    }
                    v += 1;
                }
            }
        }
        return result;
    }

    struct Open {
        pre: u32,
        eos: u32,
        iters: Vec<i64>,
    }

    let mut i = 0usize;
    while i < groups.len() {
        // start a new partition
        let mut stack: Vec<Open> = Vec::new();
        let (pre0, iters0) = &groups[i];
        stack.push(Open {
            pre: *pre0,
            eos: *pre0 + doc.size(*pre0),
            iters: iters0.clone(),
        });
        stats.nodes_scanned += 1;
        i += 1;
        let mut v = *pre0 + 1;
        while !stack.is_empty() {
            // close finished regions
            while let Some(top) = stack.last() {
                if top.eos < v {
                    stack.pop();
                } else {
                    break;
                }
            }
            if stack.is_empty() {
                break;
            }
            // open a context that starts exactly here
            if i < groups.len() && groups[i].0 == v {
                let (pre, iters) = &groups[i];
                stack.push(Open {
                    pre: *pre,
                    eos: *pre + doc.size(*pre),
                    iters: iters.clone(),
                });
                i += 1;
            }
            if v as usize >= doc.len() {
                break;
            }
            stats.nodes_scanned += 1;
            if test.matches(doc, v) {
                for open in &stack {
                    if open.pre < v {
                        for &it in &open.iters {
                            result.push((it, v));
                        }
                    }
                }
            }
            v += 1;
        }
    }
    result
}

fn ll_parent<D: NodeRead>(
    doc: &D,
    groups: &[(u32, Vec<i64>)],
    test: &CompiledTest,
    stats: &mut ScanStats,
) -> Vec<CtxPair> {
    let mut out = Vec::new();
    for (pre, iters) in groups {
        if let Some(p) = doc.parent(*pre) {
            stats.nodes_scanned += 1;
            if test.matches(doc, p) {
                for &it in iters {
                    out.push((it, p));
                }
            }
        }
    }
    out
}

fn ll_ancestor<D: NodeRead>(
    doc: &D,
    groups: &[(u32, Vec<i64>)],
    test: &CompiledTest,
    stats: &mut ScanStats,
    or_self: bool,
) -> Vec<CtxPair> {
    let mut out = Vec::new();
    for (pre, iters) in groups {
        if or_self && test.matches(doc, *pre) {
            for &it in iters {
                out.push((it, *pre));
            }
        }
        let mut cur = *pre;
        while let Some(p) = doc.parent(cur) {
            stats.nodes_scanned += 1;
            if test.matches(doc, p) {
                for &it in iters {
                    out.push((it, p));
                }
            }
            cur = p;
        }
    }
    out
}

fn ll_following<D: NodeRead>(
    doc: &D,
    ctx: &[CtxPair],
    test: &CompiledTest,
    stats: &mut ScanStats,
) -> Vec<CtxPair> {
    // per-iteration partition boundary: the smallest pre+size of that iter
    let mut boundary: std::collections::HashMap<i64, u32> = std::collections::HashMap::new();
    for &(it, p) in ctx {
        let b = p + doc.size(p);
        boundary
            .entry(it)
            .and_modify(|e| *e = (*e).min(b))
            .or_insert(b);
    }
    let mut iters: Vec<(u32, i64)> = boundary.iter().map(|(&it, &b)| (b, it)).collect();
    iters.sort_unstable();
    let Some(&(min_b, _)) = iters.first() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut active: Vec<i64> = Vec::new();
    let mut next = 0usize;
    let end = doc.len() as u32 - 1;
    let mut v = min_b + 1;
    while v <= end {
        // skip whole runs that cannot match; activation catches up after
        // the jump (activations matter only at emission points)
        let run_end = doc.run_end(v);
        if !test.may_match_run(doc, v) {
            stats.pages_skipped += 1;
            v = run_end + 1;
            continue;
        }
        while v <= run_end {
            while next < iters.len() && iters[next].0 < v {
                active.push(iters[next].1);
                next += 1;
            }
            stats.nodes_scanned += 1;
            if test.matches(doc, v) {
                for &it in &active {
                    out.push((it, v));
                }
            }
            v += 1;
        }
    }
    out
}

fn ll_preceding<D: NodeRead>(
    doc: &D,
    ctx: &[CtxPair],
    test: &CompiledTest,
    stats: &mut ScanStats,
) -> Vec<CtxPair> {
    // per-iteration boundary: the largest context pre of that iter
    let mut boundary: std::collections::HashMap<i64, u32> = std::collections::HashMap::new();
    for &(it, p) in ctx {
        boundary
            .entry(it)
            .and_modify(|e| *e = (*e).max(p))
            .or_insert(p);
    }
    let mut bounds: Vec<(u32, i64)> = boundary.iter().map(|(&it, &b)| (b, it)).collect();
    bounds.sort_unstable();
    let Some(&(max_b, _)) = bounds.last() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for v in 0..max_b {
        stats.nodes_scanned += 1;
        let end = v + doc.size(v);
        if !test.matches(doc, v) {
            continue;
        }
        // v precedes iteration `it` iff its subtree closes before that
        // iteration's boundary context node
        let idx = bounds.partition_point(|&(b, _)| b <= end);
        for &(_, it) in &bounds[idx..] {
            out.push((it, v));
        }
    }
    out
}

fn ll_siblings<D: NodeRead>(
    doc: &D,
    groups: &[(u32, Vec<i64>)],
    test: &CompiledTest,
    stats: &mut ScanStats,
    following: bool,
) -> Vec<CtxPair> {
    let mut out = Vec::new();
    for (pre, iters) in groups {
        let Some(p) = doc.parent(*pre) else { continue };
        for v in doc.children(p) {
            stats.nodes_scanned += 1;
            let keep = if following { v > *pre } else { v < *pre };
            if keep && test.matches(doc, v) {
                for &it in iters {
                    out.push((it, v));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::staircase_step;
    use mxq_xmldb::shred::{shred, ShredOptions};
    use mxq_xmldb::Document;

    fn fig4() -> Document {
        shred(
            "fig4",
            "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>",
            &ShredOptions::default(),
        )
        .unwrap()
    }

    /// Reference: evaluate per iteration with the iterative staircase join.
    fn reference(doc: &Document, ctx: &[CtxPair], axis: Axis, test: &NodeTest) -> Vec<CtxPair> {
        let mut iters: Vec<i64> = ctx.iter().map(|&(it, _)| it).collect();
        iters.sort_unstable();
        iters.dedup();
        let mut out = Vec::new();
        for it in iters {
            let c: Vec<u32> = ctx
                .iter()
                .filter(|&&(i, _)| i == it)
                .map(|&(_, p)| p)
                .collect();
            let mut stats = ScanStats::default();
            for p in staircase_step(doc, &c, axis, test, &mut stats) {
                out.push((it, p));
            }
        }
        out.sort_unstable_by_key(|&(it, p)| (p, it));
        out
    }

    fn check_axis(axis: Axis, ctx: &[CtxPair]) {
        let doc = fig4();
        let mut stats = ScanStats::default();
        let got = looplifted_step(&doc, ctx, axis, &NodeTest::AnyKind, &mut stats);
        let want = reference(&doc, ctx, axis, &NodeTest::AnyKind);
        assert_eq!(got, want, "axis {axis}");
    }

    #[test]
    fn paper_example_child_step() {
        // Section 3.1: iteration 1 has context (c1), iteration 2 has (c1, c2);
        // with c1 = f (pre 5) and c2 = h (pre 7): children of f are g,h and of h are i,j.
        let doc = fig4();
        let ctx = vec![(1, 5), (2, 5), (2, 7)];
        let mut stats = ScanStats::default();
        let got = looplifted_step(&doc, &ctx, Axis::Child, &NodeTest::AnyKind, &mut stats);
        assert_eq!(
            got,
            vec![(1, 6), (2, 6), (1, 7), (2, 7), (2, 8), (2, 9)],
            "children produced in document order, iterations clustered"
        );
        assert_eq!(stats.passes, 1);
    }

    #[test]
    fn matches_iterative_reference_on_all_axes() {
        let ctx = vec![(1, 2), (1, 5), (2, 4), (2, 8), (3, 0), (3, 7)];
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::SelfAxis,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::Following,
            Axis::Preceding,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
        ] {
            check_axis(axis, &ctx);
        }
    }

    #[test]
    fn per_iter_pruning_keeps_other_iterations() {
        let doc = fig4();
        // pre 2 (c) covers pre 4 (e) — but only within the same iteration
        let pruned = prune_per_iter(&doc, &[(1, 2), (1, 4), (2, 4)]);
        assert_eq!(pruned, vec![(1, 2), (2, 4)]);
    }

    #[test]
    fn candidate_variant_matches_nametest_scan() {
        let doc = fig4();
        let ctx = vec![(1, 0), (2, 5)];
        let test = NodeTest::named("h");
        let mut s1 = ScanStats::default();
        let full = looplifted_step(&doc, &ctx, Axis::Descendant, &test, &mut s1);
        let mut s2 = ScanStats::default();
        let cands = doc.elements_named("h");
        let pushed = looplifted_step_candidates(&doc, &ctx, Axis::Descendant, cands, &mut s2);
        assert_eq!(full, pushed);
        assert!(
            s2.nodes_scanned < s1.nodes_scanned,
            "pushdown touches only candidates ({} < {})",
            s2.nodes_scanned,
            s1.nodes_scanned
        );
    }

    #[test]
    fn child_scan_bound_result_plus_context() {
        let doc = fig4();
        let ctx = vec![(1, 0), (1, 5), (2, 7)];
        let mut stats = ScanStats::default();
        let res = looplifted_step(&doc, &ctx, Axis::Child, &NodeTest::AnyKind, &mut stats);
        // |result| counts distinct (pre) emissions per active context; the
        // bound of Section 3 is on document rows touched
        assert!(stats.nodes_scanned <= res.len() as u64 + ctx.len() as u64);
    }

    #[test]
    fn empty_context() {
        let doc = fig4();
        let mut stats = ScanStats::default();
        assert!(
            looplifted_step(&doc, &[], Axis::Descendant, &NodeTest::AnyKind, &mut stats).is_empty()
        );
    }
}
