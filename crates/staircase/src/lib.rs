//! # mxq-staircase — staircase join over the pre|size|level encoding
//!
//! The staircase join (Grust et al., \[19\] in the paper) evaluates an XPath
//! location step for a whole sequence of context nodes with a single
//! sequential scan over the document encoding, exploiting three techniques:
//! **pruning** of covered context nodes, **partitioning** of overlapping
//! regions along the pre axis and **skipping** of regions that cannot contain
//! results (Figures 1–3).
//!
//! Section 3 of the paper extends this to the **loop-lifted staircase join**:
//! the context is a set of `(iter, pre)` pairs — the node sequences of *all*
//! iterations of the enclosing XQuery for-loops — and the axis step for all
//! of them is evaluated in one pass.  Pruning is done per `iter`, a stack of
//! active context nodes implements partitioning, and skipping is unchanged,
//! so at most `|result| + |context|` document nodes are touched.
//!
//! This crate provides both variants so the ablation of Figure 12 can be
//! reproduced:
//!
//! * [`iterative`] — the plain staircase join, invoked once per iteration;
//! * [`looplifted`] — the loop-lifted staircase join of Section 3, including
//!   the candidate-list variant used for nametest/predicate pushdown
//!   (Section 3.2).
//!
//! Every function records [`ScanStats`] so tests can assert the
//! `|result| + |context|` bound and benchmarks can report nodes touched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axis;
pub mod iterative;
pub mod looplifted;
pub mod nametest;
pub mod stats;

pub use axis::Axis;
pub use iterative::staircase_step;
pub use looplifted::{looplifted_step, looplifted_step_candidates};
pub use nametest::NodeTest;
pub use stats::ScanStats;
