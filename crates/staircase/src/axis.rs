//! The XPath axes supported by the staircase join.

use std::fmt;

/// XPath axes.  The `attribute` axis is not part of the pre|size|level plane
/// (attributes live in their own property container, Figure 9) and is
/// evaluated by the executor directly against the attribute container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::`
    DescendantOrSelf,
    /// `self::`
    SelfAxis,
    /// `parent::`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `following::`
    Following,
    /// `preceding::`
    Preceding,
    /// `following-sibling::`
    FollowingSibling,
    /// `preceding-sibling::`
    PrecedingSibling,
    /// `attribute::` (handled outside the staircase join).
    Attribute,
}

impl Axis {
    /// Is this one of the reverse axes (results precede the context node in
    /// document order)?
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::Preceding
                | Axis::PrecedingSibling
        )
    }

    /// The four "main" axes that partition the pre/post plane into quadrants
    /// (Figure 1): descendant, ancestor, following, preceding.
    pub fn is_main_quadrant(self) -> bool {
        matches!(
            self,
            Axis::Descendant | Axis::Ancestor | Axis::Following | Axis::Preceding
        )
    }

    /// Parse the axis name as written in XPath (`child`, `descendant-or-self`, …).
    pub fn parse(name: &str) -> Option<Axis> {
        Some(match name {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "self" => Axis::SelfAxis,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "attribute" => Axis::Attribute,
            _ => return None,
        })
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::SelfAxis => "self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Attribute => "attribute",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::SelfAxis,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::Following,
            Axis::Preceding,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::Attribute,
        ] {
            assert_eq!(Axis::parse(&axis.to_string()), Some(axis));
        }
        assert_eq!(Axis::parse("sideways"), None);
    }

    #[test]
    fn reverse_axes() {
        assert!(Axis::Ancestor.is_reverse());
        assert!(!Axis::Descendant.is_reverse());
        assert!(Axis::Preceding.is_main_quadrant());
        assert!(!Axis::Child.is_main_quadrant());
    }
}
