//! Exhaustive per-axis checks of the staircase join against a brute-force
//! oracle on the paper's Figure 4 document and on a deeper synthetic tree.
//!
//! The oracle evaluates each axis by its set definition over the pre/size
//! encoding (no pruning, no skipping), so any divergence points at the
//! staircase join's optimisations.

use mxq_staircase::{looplifted_step, staircase_step, Axis, NodeTest, ScanStats};
use mxq_xmldb::shred::{shred, ShredOptions};
use mxq_xmldb::Document;

fn fig4() -> Document {
    shred(
        "fig4",
        "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>",
        &ShredOptions::default(),
    )
    .unwrap()
}

fn deep() -> Document {
    // a 3-level comb: root with 6 children, each with 3 children, some text
    let mut xml = String::from("<root>");
    for i in 0..6 {
        xml.push_str(&format!("<branch id=\"{i}\">"));
        for j in 0..3 {
            xml.push_str(&format!("<twig n=\"{j}\">t{i}{j}</twig>"));
        }
        xml.push_str("</branch>");
    }
    xml.push_str("</root>");
    shred("deep", &xml, &ShredOptions::default()).unwrap()
}

/// Brute-force oracle for one axis from one context node.
fn oracle(doc: &Document, c: u32, axis: Axis) -> Vec<u32> {
    let n = doc.len() as u32;
    let in_subtree = |anc: u32, v: u32| v > anc && v <= anc + doc.size(anc);
    (0..n)
        .filter(|&v| match axis {
            Axis::Child => doc.parent(v) == Some(c),
            Axis::Descendant => in_subtree(c, v),
            Axis::DescendantOrSelf => v == c || in_subtree(c, v),
            Axis::SelfAxis => v == c,
            Axis::Parent => doc.parent(c) == Some(v),
            Axis::Ancestor => in_subtree(v, c),
            Axis::AncestorOrSelf => v == c || in_subtree(v, c),
            Axis::Following => v > c + doc.size(c),
            Axis::Preceding => v + doc.size(v) < c,
            Axis::FollowingSibling => {
                doc.parent(v) == doc.parent(c) && doc.parent(c).is_some() && v > c
            }
            Axis::PrecedingSibling => {
                doc.parent(v) == doc.parent(c) && doc.parent(c).is_some() && v < c
            }
            Axis::Attribute => false,
        })
        .collect()
}

const AXES: [Axis; 11] = [
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::SelfAxis,
    Axis::Parent,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
    Axis::Following,
    Axis::Preceding,
    Axis::FollowingSibling,
    Axis::PrecedingSibling,
];

#[test]
fn iterative_staircase_matches_oracle_for_every_single_context() {
    for doc in [fig4(), deep()] {
        for axis in AXES {
            for c in 0..doc.len() as u32 {
                let mut stats = ScanStats::default();
                let got = staircase_step(&doc, &[c], axis, &NodeTest::AnyKind, &mut stats);
                let want = oracle(&doc, c, axis);
                assert_eq!(got, want, "axis {axis} from context {c} in {}", doc.name);
            }
        }
    }
}

#[test]
fn iterative_staircase_matches_oracle_for_context_sets() {
    let doc = deep();
    let n = doc.len() as u32;
    // a handful of multi-node context sets, including nested and overlapping ones
    let contexts: Vec<Vec<u32>> = vec![
        vec![0, 1, 2],
        vec![1, 5, 9],
        (0..n).step_by(3).collect(),
        vec![n - 1, n - 2, 0],
        (0..n).collect(),
    ];
    for axis in AXES {
        for ctx in &contexts {
            let mut stats = ScanStats::default();
            let got = staircase_step(&doc, ctx, axis, &NodeTest::AnyKind, &mut stats);
            let mut want: Vec<u32> = ctx.iter().flat_map(|&c| oracle(&doc, c, axis)).collect();
            want.sort_unstable();
            want.dedup();
            assert_eq!(got, want, "axis {axis} for context {ctx:?}");
        }
    }
}

#[test]
fn looplifted_results_are_per_iteration_duplicate_free_and_document_ordered() {
    let doc = deep();
    let n = doc.len() as u32;
    let ctx: Vec<(i64, u32)> = (0..n).map(|p| ((p % 5) as i64 + 1, p)).collect();
    for axis in AXES {
        let mut stats = ScanStats::default();
        let result = looplifted_step(&doc, &ctx, axis, &NodeTest::AnyKind, &mut stats);
        // sorted by (pre, iter) and free of duplicates
        let mut sorted = result.clone();
        sorted.sort_unstable_by_key(|&(it, p)| (p, it));
        sorted.dedup();
        assert_eq!(result, sorted, "axis {axis} output order");
        assert_eq!(stats.passes, 1);
        assert_eq!(stats.results, result.len() as u64);
    }
}

#[test]
fn nametest_filters_apply_during_the_scan() {
    let doc = deep();
    let mut stats = ScanStats::default();
    let root_ctx = vec![(1i64, 0u32)];
    let twigs = looplifted_step(
        &doc,
        &root_ctx,
        Axis::Descendant,
        &NodeTest::named("twig"),
        &mut stats,
    );
    assert_eq!(twigs.len(), 18);
    let branches = looplifted_step(
        &doc,
        &root_ctx,
        Axis::Child,
        &NodeTest::named("branch"),
        &mut stats,
    );
    assert_eq!(branches.len(), 6);
    let none = looplifted_step(
        &doc,
        &root_ctx,
        Axis::Descendant,
        &NodeTest::named("nope"),
        &mut stats,
    );
    assert!(none.is_empty());
    let text = looplifted_step(
        &doc,
        &root_ctx,
        Axis::Descendant,
        &NodeTest::Text,
        &mut stats,
    );
    assert_eq!(text.len(), 18);
}

#[test]
fn candidate_pushdown_equals_scan_with_nametest_on_larger_contexts() {
    let doc = deep();
    let branches: Vec<(i64, u32)> = doc
        .elements_named("branch")
        .iter()
        .enumerate()
        .map(|(i, &p)| ((i % 2) as i64 + 1, p))
        .collect();
    for axis in [Axis::Child, Axis::Descendant, Axis::DescendantOrSelf] {
        let mut s1 = ScanStats::default();
        let scan = looplifted_step(&doc, &branches, axis, &NodeTest::named("twig"), &mut s1);
        let mut s2 = ScanStats::default();
        let cands = doc.elements_named("twig");
        let push = mxq_staircase::looplifted_step_candidates(&doc, &branches, axis, cands, &mut s2);
        assert_eq!(scan, push, "axis {axis}");
    }
}
