//! # mxq-wal — durability primitives
//!
//! A std-only write-ahead log plus the small file-format utilities the
//! on-disk page store shares with it:
//!
//! * [`crc32`] — the CRC-32 (IEEE) checksum every record and every on-disk
//!   page image carries;
//! * [`WalWriter`] / [`read_records`] — length-prefixed, CRC-checksummed,
//!   generation-stamped records appended to a log file, with torn/corrupt
//!   tail detection on read: a record is either completely on disk and
//!   checksum-clean, or it (and everything after it) is discarded;
//! * [`SyncPolicy`] — when the log fsyncs: on every append, every N
//!   appends, never (the OS flushes whenever it likes), or group commit
//!   (the caller batches concurrent appenders behind one fsync);
//! * [`write_atomic`] — write-to-temp + fsync + rename, so a checkpoint
//!   file is either the old version or the complete new one.
//!
//! The crate has no dependencies (the build container has no crates.io
//! access) and knows nothing about XML or pages: payloads are opaque byte
//! strings framed as
//!
//! ```text
//! record := len:u32 LE | generation:u64 LE | crc:u32 LE | payload (len bytes)
//! ```
//!
//! where `crc` covers the generation stamp and the payload, so a record
//! whose length field survived a crash but whose body did not is still
//! rejected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of a byte string — the checksum used by WAL records and
/// on-disk page images.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming CRC-32 state update (feed the pre-inverted state; invert the
/// final state).  [`crc32`] is the one-shot form.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC_TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

// ---------------------------------------------------------------------------
// sync policy
// ---------------------------------------------------------------------------

/// When the write-ahead log forces appended records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append — an acknowledged update survives an OS
    /// crash (the durability the paper's "persistent store" implies).
    Always,
    /// `fsync` after every N appends (group commit): up to N−1 acknowledged
    /// updates can be lost on an OS crash, bounded write amplification.
    EveryN(u32),
    /// Never `fsync` explicitly; the OS flushes on its own schedule.
    /// Process crashes lose nothing (the kernel has the writes); power
    /// loss can lose the unflushed suffix.
    Never,
    /// Group commit for concurrent appenders: `append` itself never
    /// fsyncs — a coordinator above this crate gathers the records that
    /// arrive within the window, issues one [`WalWriter::sync`] for the
    /// whole batch, and only then acknowledges them.  Same durability as
    /// [`SyncPolicy::Always`] (an acknowledged record survives an OS
    /// crash) at a fraction of the fsync count under concurrency.
    GroupCommit(std::time::Duration),
}

impl SyncPolicy {
    /// Parse the `MXQ_SYNC` environment variable: `always` (default when
    /// unset or empty), `never`, `every=N` / `every:N` for periodic
    /// fsyncs, or `group=W` / `group:W` for group commit with gather
    /// window `W` (`5ms`, `500us`, or a bare number meaning milliseconds).
    ///
    /// # Panics
    /// Panics on a set-but-invalid value, so a typo can never silently
    /// weaken durability.
    pub fn from_env() -> SyncPolicy {
        match std::env::var("MXQ_SYNC") {
            Ok(raw) if !raw.trim().is_empty() => raw
                .trim()
                .parse()
                .unwrap_or_else(|e| panic!("invalid MXQ_SYNC `{raw}`: {e}")),
            _ => SyncPolicy::Always,
        }
    }
}

impl std::str::FromStr for SyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            other => {
                if let Some(w) = other
                    .strip_prefix("group=")
                    .or_else(|| other.strip_prefix("group:"))
                {
                    let (digits, unit) = if let Some(d) = w.strip_suffix("us") {
                        (d, 1u64)
                    } else if let Some(d) = w.strip_suffix("ms") {
                        (d, 1000u64)
                    } else {
                        (w, 1000u64)
                    };
                    let n: u64 = digits
                        .parse()
                        .map_err(|_| format!("`{w}` is not a group-commit window"))?;
                    return Ok(SyncPolicy::GroupCommit(std::time::Duration::from_micros(
                        n * unit,
                    )));
                }
                let n = other
                    .strip_prefix("every=")
                    .or_else(|| other.strip_prefix("every:"))
                    .ok_or_else(|| {
                        "expected `always`, `never`, `every=N` or `group=W`".to_string()
                    })?;
                let n: u32 = n
                    .parse()
                    .map_err(|_| format!("`{n}` is not a record count"))?;
                if n == 0 {
                    return Err("`every=0` is meaningless; use `always`".into());
                }
                Ok(SyncPolicy::EveryN(n))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// errors
// ---------------------------------------------------------------------------

/// Errors from the write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// An I/O operation on the log file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "write-ahead log I/O failed: {e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// record framing
// ---------------------------------------------------------------------------

/// Bytes of a record header: `len:u32 | generation:u64 | crc:u32`.
pub const RECORD_HEADER_LEN: u64 = 16;

/// One complete, checksum-verified log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The generation stamp the record was appended with (for the store:
    /// the publish generation the logged operation produced).
    pub generation: u64,
    /// The opaque payload.
    pub payload: Vec<u8>,
    /// Byte offset of the record header in the log file.
    pub offset: u64,
}

impl WalRecord {
    /// Total encoded length of the record (header + payload).
    pub fn encoded_len(&self) -> u64 {
        RECORD_HEADER_LEN + self.payload.len() as u64
    }
}

/// The outcome of scanning a log file.
#[derive(Debug)]
pub struct WalScan {
    /// The complete, checksum-clean records, in append order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix in bytes.  Anything after this offset is
    /// a torn or corrupt tail and must be discarded before appending.
    pub valid_len: u64,
    /// True if the file held bytes past the valid prefix (a torn append or
    /// a corrupted record was detected and discarded).
    pub tail_discarded: bool,
}

/// Scan a log file, verifying every record checksum.  Scanning stops at the
/// first incomplete or corrupt record: a crash mid-append leaves exactly a
/// valid prefix.  A missing file is an empty log.
pub fn read_records(path: &Path) -> Result<WalScan, WalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + RECORD_HEADER_LEN as usize) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let generation = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let crc = u32::from_le_bytes(header[12..16].try_into().unwrap());
        let body_start = pos + RECORD_HEADER_LEN as usize;
        let Some(payload) = bytes.get(body_start..body_start + len) else {
            break; // torn tail: the payload never made it to disk
        };
        if record_crc(generation, payload) != crc {
            break; // corrupt record: discard it and everything after
        }
        records.push(WalRecord {
            generation,
            payload: payload.to_vec(),
            offset: pos as u64,
        });
        pos = body_start + len;
    }
    Ok(WalScan {
        records,
        valid_len: pos as u64,
        tail_discarded: pos < bytes.len(),
    })
}

fn record_crc(generation: u64, payload: &[u8]) -> u32 {
    let state = crc32_update(0xFFFF_FFFF, &generation.to_le_bytes());
    crc32_update(state, payload) ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// the writer
// ---------------------------------------------------------------------------

/// An append-only write-ahead log file.
///
/// Opening scans the existing file, truncates any torn/corrupt tail, and
/// positions the writer after the last complete record; [`WalWriter::append`]
/// frames one payload and applies the [`SyncPolicy`].
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    len: u64,
    appends_since_sync: u32,
    /// Total payload+header bytes appended through this writer.
    bytes_appended: u64,
    /// Number of `fsync` calls issued by this writer.
    syncs: u64,
    /// Remaining [`WalWriter::sync`] calls that fail with an injected
    /// error (test-only failure injection, see
    /// [`WalWriter::inject_sync_failures`]).
    fail_syncs: u32,
}

impl WalWriter {
    /// Open (or create) the log at `path`, returning the writer and the
    /// complete records recovered from the existing file.  A torn or
    /// corrupt tail is truncated away so new appends extend the valid
    /// prefix.
    pub fn open(path: &Path, policy: SyncPolicy) -> Result<(WalWriter, WalScan), WalError> {
        let scan = read_records(path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(scan.valid_len)?;
        file.seek(SeekFrom::Start(scan.valid_len))?;
        if scan.tail_discarded {
            file.sync_all()?;
        }
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                policy,
                len: scan.valid_len,
                appends_since_sync: 0,
                bytes_appended: 0,
                syncs: 0,
                fail_syncs: 0,
            },
            scan,
        ))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current length of the valid log in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total bytes appended through this writer (headers included).
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Number of `fsync` calls this writer has issued.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// The configured sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Append one record and apply the sync policy.  Returns the bytes
    /// written (header + payload).  On any error the file is restored to
    /// the last known-good length (best effort), so a partially written
    /// frame can never sit in front of later records; the caller must
    /// treat the logged operation as NOT durable (and must not publish
    /// it).  Under [`SyncPolicy::GroupCommit`] no fsync happens here —
    /// the group-commit coordinator calls [`WalWriter::sync`] once per
    /// batch.
    pub fn append(&mut self, generation: u64, payload: &[u8]) -> Result<u64, WalError> {
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&generation.to_le_bytes());
        frame.extend_from_slice(&record_crc(generation, payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if let Err(e) = self.file.write_all(&frame) {
            let _ = self.file.set_len(self.len);
            let _ = self.file.seek(SeekFrom::Start(self.len));
            return Err(e.into());
        }
        let before = self.len;
        self.len += frame.len() as u64;
        self.bytes_appended += frame.len() as u64;
        let must_sync = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                self.appends_since_sync >= n
            }
            SyncPolicy::Never | SyncPolicy::GroupCommit(_) => false,
        };
        if must_sync {
            if let Err(e) = self.sync() {
                // the record is in the file but its durability is unknown —
                // the caller will fail the operation, so take the record
                // back out (best effort) lest recovery replay an update the
                // client was told failed.  If the rollback itself fails the
                // record may survive; the operation's outcome across a
                // crash is then indeterminate.
                let _ = self.file.set_len(before);
                let _ = self.file.seek(SeekFrom::Start(before));
                self.len = before;
                self.bytes_appended -= frame.len() as u64;
                if let SyncPolicy::EveryN(_) = self.policy {
                    self.appends_since_sync -= 1;
                }
                return Err(e);
            }
        }
        Ok(frame.len() as u64)
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.fail_syncs > 0 {
            self.fail_syncs -= 1;
            return Err(WalError::Io(std::io::Error::other(
                "injected fsync failure",
            )));
        }
        self.file.sync_all()?;
        self.appends_since_sync = 0;
        self.syncs += 1;
        Ok(())
    }

    /// Make the next `n` [`WalWriter::sync`] calls fail with an injected
    /// I/O error, for testing the failure paths above this crate (group
    /// commit poisoning, failed-record rollback).  Hidden from docs; never
    /// used outside tests.
    #[doc(hidden)]
    pub fn inject_sync_failures(&mut self, n: u32) {
        self.fail_syncs = n;
    }

    /// Truncate the log back to `len` bytes and persist the truncation:
    /// the group-commit coordinator's failure path, taking unacknowledged
    /// records back out of the file so recovery cannot replay an operation
    /// whose commit was reported failed.  `len` must be a record boundary
    /// the caller knows to be durable (everything at or below it survived
    /// a completed fsync).  No-op when the file is already at `len`.
    pub fn truncate_to(&mut self, len: u64) -> Result<(), WalError> {
        if self.len == len {
            return Ok(());
        }
        debug_assert!(len < self.len, "truncate_to must not extend the log");
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        self.file.sync_all()?;
        self.len = len;
        self.appends_since_sync = 0;
        self.syncs += 1;
        Ok(())
    }

    /// Drop every record (a checkpoint made them redundant) and persist the
    /// truncation.
    pub fn truncate(&mut self) -> Result<(), WalError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.len = 0;
        self.appends_since_sync = 0;
        self.syncs += 1;
        Ok(())
    }

    /// Rotate the log, keeping only records stamped strictly after
    /// `generation` — the concurrent-safe replacement for [`WalWriter::truncate`]
    /// when a checkpoint covers generations up to `generation` but later
    /// commits may already have appended records behind it.  The retained
    /// records are rewritten atomically ([`write_atomic`], so a crash
    /// mid-rotation leaves either the old or the new log) and the writer
    /// reopens its handle at the new file.  If nothing survives the filter
    /// this degenerates to [`WalWriter::truncate`].
    pub fn retain_after(&mut self, generation: u64) -> Result<(), WalError> {
        // the caller serializes rotation against appends, so every record
        // (synced or not) is visible to this read
        let scan = read_records(&self.path)?;
        let retained: Vec<&WalRecord> = scan
            .records
            .iter()
            .filter(|r| r.generation > generation)
            .collect();
        if retained.is_empty() {
            return self.truncate();
        }
        let mut bytes = Vec::new();
        for r in &retained {
            bytes.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&r.generation.to_le_bytes());
            bytes.extend_from_slice(&record_crc(r.generation, &r.payload).to_le_bytes());
            bytes.extend_from_slice(&r.payload);
        }
        write_atomic(&self.path, &bytes)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::Start(bytes.len() as u64))?;
        self.file = file;
        self.len = bytes.len() as u64;
        self.appends_since_sync = 0;
        self.syncs += 1; // write_atomic fsynced the rotated file
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// atomic file replacement
// ---------------------------------------------------------------------------

/// Write `bytes` to `path` atomically: write a temp file in the same
/// directory, fsync it, then rename over the destination.  Readers (and a
/// crash at any point) observe either the previous content or the complete
/// new one, never a torn file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), std::io::Error> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // persist the rename itself (directory entry); failures to open the
    // directory (platform-dependent) fall back to the rename alone
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Read a whole file; a missing file is `None`, other errors propagate.
pub fn read_optional(path: &Path) -> Result<Option<Vec<u8>>, std::io::Error> {
    match std::fs::read(path) {
        Ok(b) => Ok(Some(b)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mxq-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = tmp("roundtrip");
        let (mut w, scan) = WalWriter::open(&path, SyncPolicy::Always).unwrap();
        assert!(scan.records.is_empty());
        w.append(1, b"first").unwrap();
        w.append(2, b"second, longer payload").unwrap();
        w.append(3, b"").unwrap();
        drop(w);
        let scan = read_records(&path).unwrap();
        assert!(!scan.tail_discarded);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0].generation, 1);
        assert_eq!(scan.records[0].payload, b"first");
        assert_eq!(scan.records[1].payload, b"second, longer payload");
        assert_eq!(scan.records[2].generation, 3);
        assert!(scan.records[2].payload.is_empty());
        assert_eq!(scan.records[1].offset, scan.records[0].encoded_len());
    }

    #[test]
    fn torn_tail_is_discarded_at_every_byte_boundary() {
        let path = tmp("torn");
        let (mut w, _) = WalWriter::open(&path, SyncPolicy::Never).unwrap();
        w.append(1, b"intact record").unwrap();
        let keep = w.len();
        w.append(2, b"the tail record that will be torn").unwrap();
        let full = w.len();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        for cut in keep..full {
            std::fs::write(&path, &bytes[..cut as usize]).unwrap();
            let scan = read_records(&path).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, keep, "cut at {cut}");
            assert_eq!(scan.tail_discarded, cut > keep, "cut at {cut}");
        }
        // the full file reads both records
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_records(&path).unwrap().records.len(), 2);
    }

    #[test]
    fn corrupt_record_is_rejected_by_crc() {
        let path = tmp("corrupt");
        let (mut w, _) = WalWriter::open(&path, SyncPolicy::Never).unwrap();
        w.append(1, b"good").unwrap();
        let keep = w.len() as usize;
        w.append(2, b"bad-to-be").unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        // flip one byte in every position of the tail record in turn
        for i in keep..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            std::fs::write(&path, &corrupted).unwrap();
            let scan = read_records(&path).unwrap();
            assert_eq!(scan.records.len(), 1, "flipped byte {i}");
            assert!(scan.tail_discarded, "flipped byte {i}");
        }
    }

    #[test]
    fn open_truncates_torn_tail_and_appends_continue() {
        let path = tmp("reopen");
        let (mut w, _) = WalWriter::open(&path, SyncPolicy::Never).unwrap();
        w.append(1, b"kept").unwrap();
        let keep = w.len();
        w.append(2, b"torn").unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..keep as usize + 5]).unwrap();
        let (mut w, scan) = WalWriter::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.tail_discarded);
        assert_eq!(w.len(), keep);
        w.append(2, b"replacement").unwrap();
        drop(w);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].payload, b"replacement");
        assert!(!scan.tail_discarded);
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = tmp("truncate");
        let (mut w, _) = WalWriter::open(&path, SyncPolicy::Always).unwrap();
        w.append(1, b"a").unwrap();
        w.append(2, b"b").unwrap();
        w.truncate().unwrap();
        assert!(w.is_empty());
        w.append(3, b"after").unwrap();
        drop(w);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].generation, 3);
    }

    #[test]
    fn sync_policies_count_fsyncs() {
        let path = tmp("syncs");
        let (mut w, _) = WalWriter::open(&path, SyncPolicy::Always).unwrap();
        w.append(1, b"x").unwrap();
        w.append(2, b"y").unwrap();
        assert_eq!(w.syncs(), 2);
        let path = tmp("syncs-group");
        let (mut w, _) = WalWriter::open(&path, SyncPolicy::EveryN(3)).unwrap();
        for g in 0..7 {
            w.append(g, b"z").unwrap();
        }
        assert_eq!(w.syncs(), 2, "7 appends at every=3 fsync twice");
        let path = tmp("syncs-never");
        let (mut w, _) = WalWriter::open(&path, SyncPolicy::Never).unwrap();
        for g in 0..5 {
            w.append(g, b"z").unwrap();
        }
        assert_eq!(w.syncs(), 0);
        // group commit never fsyncs inline: the coordinator owns the sync
        let path = tmp("syncs-groupcommit");
        let (mut w, _) =
            WalWriter::open(&path, SyncPolicy::GroupCommit(std::time::Duration::ZERO)).unwrap();
        for g in 0..5 {
            w.append(g, b"z").unwrap();
        }
        assert_eq!(w.syncs(), 0);
        w.sync().unwrap();
        assert_eq!(w.syncs(), 1);
    }

    #[test]
    fn sync_policy_parses() {
        assert_eq!("always".parse::<SyncPolicy>().unwrap(), SyncPolicy::Always);
        assert_eq!("never".parse::<SyncPolicy>().unwrap(), SyncPolicy::Never);
        assert_eq!(
            "every=8".parse::<SyncPolicy>().unwrap(),
            SyncPolicy::EveryN(8)
        );
        assert_eq!(
            "every:2".parse::<SyncPolicy>().unwrap(),
            SyncPolicy::EveryN(2)
        );
        assert_eq!(
            "group=2ms".parse::<SyncPolicy>().unwrap(),
            SyncPolicy::GroupCommit(std::time::Duration::from_millis(2))
        );
        assert_eq!(
            "group:500us".parse::<SyncPolicy>().unwrap(),
            SyncPolicy::GroupCommit(std::time::Duration::from_micros(500))
        );
        assert_eq!(
            "group=3".parse::<SyncPolicy>().unwrap(),
            SyncPolicy::GroupCommit(std::time::Duration::from_millis(3))
        );
        assert!("every=0".parse::<SyncPolicy>().is_err());
        assert!("group=fast".parse::<SyncPolicy>().is_err());
        assert!("sometimes".parse::<SyncPolicy>().is_err());
    }

    #[test]
    fn retain_after_keeps_only_newer_records() {
        let path = tmp("retain");
        let (mut w, _) = WalWriter::open(&path, SyncPolicy::Never).unwrap();
        for g in 1..=6 {
            w.append(g, format!("record-{g}").as_bytes()).unwrap();
        }
        w.retain_after(4).unwrap();
        assert_eq!(w.syncs(), 1);
        let scan = read_records(&path).unwrap();
        assert_eq!(
            scan.records
                .iter()
                .map(|r| r.generation)
                .collect::<Vec<_>>(),
            vec![5, 6]
        );
        assert_eq!(scan.records[1].payload, b"record-6");
        assert_eq!(w.len(), scan.valid_len);
        // appends continue cleanly on the rotated file
        w.append(7, b"post-rotate").unwrap();
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(!scan.tail_discarded);
        // retaining past the newest record empties the log
        w.retain_after(100).unwrap();
        assert!(w.is_empty());
        assert_eq!(read_records(&path).unwrap().records.len(), 0);
    }

    #[test]
    fn write_atomic_replaces_whole_files() {
        let path = tmp("atomic");
        write_atomic(&path, b"version one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"version one");
        write_atomic(&path, b"version two, different length").unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"version two, different length"
        );
        assert_eq!(
            read_optional(&path).unwrap().unwrap(),
            std::fs::read(&path).unwrap()
        );
        assert!(read_optional(&path.with_extension("missing"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncate_to_rolls_back_unsynced_tail_records() {
        let path = tmp("truncate-to");
        let (mut w, _) = WalWriter::open(&path, SyncPolicy::Never).unwrap();
        w.append(1, b"durable one").unwrap();
        w.append(2, b"durable two").unwrap();
        w.sync().unwrap();
        let watermark = w.len();
        w.append(3, b"doomed").unwrap();
        w.append(4, b"also doomed").unwrap();
        w.truncate_to(watermark).unwrap();
        assert_eq!(w.len(), watermark);
        let scan = read_records(&path).unwrap();
        assert_eq!(
            scan.records
                .iter()
                .map(|r| r.generation)
                .collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(!scan.tail_discarded);
        // the writer keeps appending cleanly after the rollback, and
        // truncating to the current length is a no-op
        w.append(5, b"post-rollback").unwrap();
        w.truncate_to(w.len()).unwrap();
        drop(w);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].generation, 5);
    }

    #[test]
    fn inline_sync_failure_takes_the_record_back_out() {
        let path = tmp("inline-fail");
        let (mut w, _) = WalWriter::open(&path, SyncPolicy::Always).unwrap();
        w.append(1, b"acknowledged").unwrap();
        let keep = w.len();
        let appended = w.bytes_appended();
        w.inject_sync_failures(1);
        let err = w.append(2, b"failed commit").unwrap_err();
        assert!(matches!(err, WalError::Io(_)));
        // the failed record was rolled back: file and counters unchanged,
        // so recovery can never replay an operation reported as failed
        assert_eq!(w.len(), keep);
        assert_eq!(w.bytes_appended(), appended);
        let scan = read_records(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].generation, 1);
        // the writer is usable again once syncs succeed
        w.append(3, b"next").unwrap();
        drop(w);
        let scan = read_records(&path).unwrap();
        assert_eq!(
            scan.records
                .iter()
                .map(|r| r.generation)
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
    }
}
