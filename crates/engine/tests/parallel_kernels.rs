//! Parallel kernels must produce bit-identical output to their sequential
//! counterparts for any thread count — thread count is a pure performance
//! knob (the same contract the CI determinism leg checks end to end).

use mxq_engine::agg::{aggregate_grouped, aggregate_grouped_with, AggFunc};
use mxq_engine::join::{radix_hash_join, radix_hash_join_with};
use mxq_engine::rank::{row_number_streaming, row_number_streaming_with};
use mxq_engine::sort::{
    refine_sort_permutation, refine_sort_permutation_with, sort_permutation, sort_permutation_with,
    SortOrder,
};
use mxq_engine::{Column, Item};

/// Deterministic xorshift so the inputs are sizeable but reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const N: usize = 20_000; // comfortably above the sequential-fallback floor
const THREADS: &[usize] = &[2, 3, 4, 8];

#[test]
fn parallel_sort_permutation_is_identical() {
    let mut rng = Rng(7);
    let a = Column::Int((0..N).map(|_| rng.below(50) as i64).collect());
    let b = Column::Int((0..N).map(|_| rng.below(1000) as i64).collect());
    let keys = [(&a, SortOrder::Asc), (&b, SortOrder::Desc)];
    let seq = sort_permutation(&keys);
    for &t in THREADS {
        assert_eq!(sort_permutation_with(&keys, t), seq, "threads {t}");
    }
}

#[test]
fn parallel_refine_sort_is_identical() {
    let mut rng = Rng(11);
    // major pre-sorted with long runs, minor random
    let major = Column::Int((0..N).map(|i| (i / 97) as i64).collect());
    let minor = Column::Int((0..N).map(|_| rng.below(500) as i64).collect());
    let seq = refine_sort_permutation(&major, &[(&minor, SortOrder::Asc)]);
    for &t in THREADS {
        assert_eq!(
            refine_sort_permutation_with(&major, &[(&minor, SortOrder::Asc)], t),
            seq,
            "threads {t}"
        );
    }
}

#[test]
fn parallel_grouped_aggregation_is_identical() {
    let mut rng = Rng(13);
    let iter: Vec<i64> = (0..N).map(|i| (i / 13) as i64).collect();
    let items = Column::Int((0..N).map(|_| rng.below(10_000) as i64).collect());
    for func in [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
    ] {
        let seq = aggregate_grouped(&iter, &items, func).unwrap();
        for &t in THREADS {
            let par = aggregate_grouped_with(&iter, &items, func, t).unwrap();
            assert_eq!(par.groups, seq.groups, "{func:?} threads {t}");
            let fmt = |v: &[Item]| v.iter().map(|i| i.string_value()).collect::<Vec<_>>();
            assert_eq!(fmt(&par.values), fmt(&seq.values), "{func:?} threads {t}");
        }
    }
}

#[test]
fn parallel_dict_aggregation_is_identical() {
    let mut rng = Rng(17);
    let iter: Vec<i64> = (0..N).map(|i| (i / 29) as i64).collect();
    let words = ["apple", "pear", "plum", "fig", "date", "quince"];
    let items = Column::dict_from_strings(
        (0..N)
            .map(|_| words[rng.below(6) as usize])
            .collect::<Vec<_>>(),
    );
    for func in [AggFunc::Min, AggFunc::Max] {
        let seq = aggregate_grouped(&iter, &items, func).unwrap();
        for &t in THREADS {
            let par = aggregate_grouped_with(&iter, &items, func, t).unwrap();
            let fmt = |v: &[Item]| v.iter().map(|i| i.string_value()).collect::<Vec<_>>();
            assert_eq!(fmt(&par.values), fmt(&seq.values), "{func:?} threads {t}");
        }
    }
}

#[test]
fn parallel_row_numbering_is_identical() {
    let mut rng = Rng(19);
    let group: Vec<i64> = (0..N).map(|_| rng.below(200) as i64).collect();
    let seq = row_number_streaming(&group);
    for &t in THREADS {
        assert_eq!(row_number_streaming_with(&group, t), seq, "threads {t}");
    }
}

#[test]
fn parallel_radix_join_is_identical() {
    let mut rng = Rng(23);
    // mixed keys: ints, numeric strings and plain strings, with collisions
    let mk = |rng: &mut Rng, n: usize| -> Column {
        Column::from_items(
            (0..n)
                .map(|_| match rng.below(3) {
                    0 => Item::Int(rng.below(300) as i64),
                    1 => Item::str(format!("{}", rng.below(300)).as_str()),
                    _ => Item::str(format!("k{}", rng.below(300)).as_str()),
                })
                .collect(),
        )
    };
    let left = mk(&mut rng, N / 2);
    let right = mk(&mut rng, N);
    let seq = radix_hash_join(&left, &right);
    for &t in THREADS {
        assert_eq!(radix_hash_join_with(&left, &right, t), seq, "threads {t}");
    }
}

#[test]
fn parallel_gather_and_filter_are_identical() {
    let mut rng = Rng(29);
    let col = Column::Int((0..N as i64).collect());
    let idx: Vec<usize> = (0..N).map(|_| rng.below(N as u64) as usize).collect();
    let mask: Vec<bool> = (0..N).map(|_| rng.below(2) == 0).collect();
    let g_seq = col.gather(&idx);
    let f_seq = col.filter(&mask).unwrap();
    for &t in THREADS {
        assert_eq!(
            col.gather_with(&idx, t).as_int().unwrap(),
            g_seq.as_int().unwrap(),
            "gather threads {t}"
        );
        assert_eq!(
            col.filter_with(&mask, t).unwrap().as_int().unwrap(),
            f_seq.as_int().unwrap(),
            "filter threads {t}"
        );
    }
}
