//! Shared, sorted string dictionaries backing [`Column::Dict`].
//!
//! A [`Dictionary`] is an immutable, deduplicated list of strings kept in
//! ascending order, so that **code order equals string order**: for two codes
//! `a` and `b`, `a < b ⇔ str_of(a) < str_of(b)`.  This is what lets `sort`,
//! `rank` and min/max aggregation run entirely on the `u32` codes of a
//! dictionary-encoded column without ever touching string payloads — the
//! dense positional processing of Section 4.1 applied to strings.
//!
//! Dictionaries are shared behind an [`Arc`]: every column encoded against
//! the same dictionary instance can be joined code-to-code (see
//! [`crate::join::radix_hash_join`]), which turns the string equi-joins of
//! the XMark hot paths into integer joins.
//!
//! [`Column::Dict`]: crate::column::Column::Dict

use std::sync::Arc;

/// An immutable, sorted, deduplicated string dictionary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    /// The distinct strings, ascending; the code of a string is its index.
    strings: Vec<Arc<str>>,
    /// Whether any entry parses as a number (`"10"`, `" 3.5 "`).  Columns
    /// over purely non-numeric dictionaries (tag names, attribute names) can
    /// skip the numeric-string normalisation of the XQuery general
    /// comparison during joins.
    any_numeric: bool,
    /// Per-code numeric join key: the `f64` bit pattern of entries that
    /// parse as a number, `None` for everything else.  Lets a join over a
    /// *mixed* dictionary (attribute values: ids and prices side by side)
    /// still run per code instead of per row.
    numeric_keys: Vec<Option<u64>>,
}

impl Dictionary {
    /// Build a dictionary from arbitrary strings (sorted and deduplicated).
    pub fn new<I, S>(strings: I) -> Arc<Dictionary>
    where
        I: IntoIterator<Item = S>,
        S: Into<Arc<str>>,
    {
        let mut strings: Vec<Arc<str>> = strings.into_iter().map(Into::into).collect();
        strings.sort_unstable();
        strings.dedup();
        Arc::new(Dictionary::from_sorted(strings))
    }

    fn from_sorted(strings: Vec<Arc<str>>) -> Dictionary {
        let numeric_keys: Vec<Option<u64>> = strings
            .iter()
            .map(|s| s.trim().parse::<f64>().ok().map(f64::to_bits))
            .collect();
        let any_numeric = numeric_keys.iter().any(Option::is_some);
        Dictionary {
            strings,
            any_numeric,
            numeric_keys,
        }
    }

    /// Number of distinct strings (the code domain is `0..len`).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when the dictionary holds no strings.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The code of `s`, if present (binary search over the sorted strings).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.strings
            .binary_search_by(|probe| probe.as_ref().cmp(s))
            .ok()
            .map(|i| i as u32)
    }

    /// The string behind a code.
    ///
    /// # Panics
    /// Panics when `code` is outside `0..len` (codes are dense).
    pub fn str_of(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }

    /// Iterate over the strings in code (= string) order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<str>> {
        self.strings.iter()
    }

    /// Does any entry parse as a number?  When false, code equality is
    /// exactly XQuery general-comparison equality for this dictionary, so
    /// joins may compare codes directly.
    pub fn any_numeric(&self) -> bool {
        self.any_numeric
    }

    /// Numeric join key of a code: the `f64` bit pattern when the entry
    /// parses as a number (the XQuery general-comparison normalisation of
    /// untyped data), `None` for non-numeric strings.
    ///
    /// # Panics
    /// Panics when `code` is outside `0..len` (codes are dense).
    pub fn numeric_key_of(&self, code: u32) -> Option<u64> {
        self.numeric_keys[code as usize]
    }

    /// Encode a batch of strings, building the dictionary and the per-row
    /// code column in one pass (sort + dedup + binary-search lookups).
    pub fn encode<I, S>(strings: I) -> (Vec<u32>, Arc<Dictionary>)
    where
        I: IntoIterator<Item = S>,
        S: Into<Arc<str>>,
    {
        let rows: Vec<Arc<str>> = strings.into_iter().map(Into::into).collect();
        let dict = Dictionary::new(rows.iter().cloned());
        let codes = rows
            .iter()
            .map(|s| dict.code_of(s).expect("every row is in its dictionary"))
            .collect();
        (codes, dict)
    }

    /// Merge two dictionaries into one (sorted union) and return, along with
    /// the merged dictionary, the code remapping of each input: old code `c`
    /// of `a` becomes `remap_a[c]` in the merged dictionary.
    pub fn merge(a: &Dictionary, b: &Dictionary) -> (Arc<Dictionary>, Vec<u32>, Vec<u32>) {
        let mut merged: Vec<Arc<str>> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let next = match (a.strings.get(i), b.strings.get(j)) {
                (Some(x), Some(y)) => match x.as_ref().cmp(y.as_ref()) {
                    std::cmp::Ordering::Less => {
                        i += 1;
                        x.clone()
                    }
                    std::cmp::Ordering::Greater => {
                        j += 1;
                        y.clone()
                    }
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                        x.clone()
                    }
                },
                (Some(x), None) => {
                    i += 1;
                    x.clone()
                }
                (None, Some(y)) => {
                    j += 1;
                    y.clone()
                }
                (None, None) => unreachable!(),
            };
            merged.push(next);
        }
        let dict = Arc::new(Dictionary::from_sorted(merged));
        let remap = |src: &Dictionary| {
            src.strings
                .iter()
                .map(|s| dict.code_of(s).expect("merged dictionary is a superset"))
                .collect()
        };
        let ra = remap(a);
        let rb = remap(b);
        (dict, ra, rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_follow_string_order() {
        let d = Dictionary::new(["person", "item", "item", "auction"]);
        assert_eq!(d.len(), 3);
        assert!(d.code_of("auction") < d.code_of("item"));
        assert!(d.code_of("item") < d.code_of("person"));
        assert_eq!(d.code_of("missing"), None);
        assert_eq!(d.str_of(d.code_of("item").unwrap()).as_ref(), "item");
    }

    #[test]
    fn encode_round_trips() {
        let rows = ["b", "a", "b", "c", "a"];
        let (codes, dict) = Dictionary::encode(rows);
        let decoded: Vec<&str> = codes.iter().map(|&c| dict.str_of(c).as_ref()).collect();
        assert_eq!(decoded, rows);
    }

    #[test]
    fn merge_remaps_both_sides() {
        let a = Dictionary::new(["a", "c"]);
        let b = Dictionary::new(["b", "c", "d"]);
        let (m, ra, rb) = Dictionary::merge(&a, &b);
        assert_eq!(m.len(), 4);
        for (old, s) in a.iter().enumerate() {
            assert_eq!(m.str_of(ra[old]), s);
        }
        for (old, s) in b.iter().enumerate() {
            assert_eq!(m.str_of(rb[old]), s);
        }
    }

    #[test]
    fn numeric_detection() {
        assert!(!Dictionary::new(["tag", "name"]).any_numeric());
        assert!(Dictionary::new(["tag", "10"]).any_numeric());
        assert!(Dictionary::new([" 3.5 "]).any_numeric());
    }

    #[test]
    fn numeric_keys_per_code() {
        let d = Dictionary::new(["person0", "10", "10.0", "3.5"]);
        let key = |s: &str| d.numeric_key_of(d.code_of(s).unwrap());
        assert_eq!(key("person0"), None);
        assert_eq!(key("10"), Some(10f64.to_bits()));
        // distinct strings, equal numeric value: the keys collapse
        assert_eq!(key("10"), key("10.0"));
        assert_eq!(key("3.5"), Some(3.5f64.to_bits()));
    }
}
