//! Grouped aggregation over the `iter|item` sequence encoding.
//!
//! XQuery aggregate functions (`count`, `sum`, `avg`, `min`, `max`) and the
//! min/max pushdown of the existential join rewrite (Section 4.2) all reduce
//! an `iter`-grouped item column to one value per `iter` group.
//!
//! Two strategies are offered, mirroring the engine behaviour the paper
//! relies on:
//!
//! * [`aggregate_grouped`] — assumes the input is ordered on `iter` (which the
//!   order-aware physical algebra guarantees), so grouping is "for free": a
//!   single sequential pass.
//! * [`aggregate_hash`] — no order assumption; used when the order property
//!   cannot be established.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::par;
use crate::value::Item;

/// The aggregate functions supported by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of items per group.
    Count,
    /// Numeric sum per group (items coerced to double; integers stay integral).
    Sum,
    /// Arithmetic mean per group.
    Avg,
    /// Minimum item per group (value comparison).
    Min,
    /// Maximum item per group (value comparison).
    Max,
}

/// Result of a grouped aggregation: one row per group, in group order of
/// first appearance (for the sequential variant this is ascending `iter`).
#[derive(Debug, Clone)]
pub struct Aggregated {
    /// The group keys (`iter` values).
    pub groups: Vec<i64>,
    /// The aggregated value per group.
    pub values: Vec<Item>,
}

fn finish(func: AggFunc, items: &[Item]) -> Result<Item> {
    match func {
        AggFunc::Count => Ok(Item::Int(items.len() as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            let mut sum = 0.0f64;
            let mut all_int = true;
            for it in items {
                match it {
                    Item::Int(i) => sum += *i as f64,
                    _ => {
                        all_int = false;
                        sum += it.as_number().ok_or_else(|| {
                            EngineError::Conversion(format!(
                                "cannot aggregate non-numeric item {it}"
                            ))
                        })?;
                    }
                }
            }
            if func == AggFunc::Sum {
                if all_int {
                    Ok(Item::Int(sum as i64))
                } else {
                    Ok(Item::Dbl(sum))
                }
            } else {
                Ok(Item::Dbl(sum / items.len().max(1) as f64))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&Item> = None;
            for it in items {
                best = Some(match best {
                    None => it,
                    Some(b) => {
                        let take_new = match func {
                            AggFunc::Min => it.total_cmp(b) == std::cmp::Ordering::Less,
                            _ => it.total_cmp(b) == std::cmp::Ordering::Greater,
                        };
                        if take_new {
                            it
                        } else {
                            b
                        }
                    }
                });
            }
            best.cloned()
                .ok_or_else(|| EngineError::Internal("aggregate over empty group".into()))
        }
    }
}

/// Aggregate an item column grouped by an `iter` column that is already
/// sorted ascending.  One sequential pass; grouping is free (Section 4.2).
pub fn aggregate_grouped(iter: &[i64], items: &Column, func: AggFunc) -> Result<Aggregated> {
    aggregate_grouped_with(iter, items, func, 1)
}

/// Parallel [`aggregate_grouped`]: the group runs are independent, so the
/// row space splits into contiguous, group-aligned ranges and each worker
/// reduces its runs.  Output is identical for any thread count.
pub fn aggregate_grouped_with(
    iter: &[i64],
    items: &Column,
    func: AggFunc,
    threads: usize,
) -> Result<Aggregated> {
    if iter.len() != items.len() {
        return Err(EngineError::LengthMismatch {
            left: iter.len(),
            right: items.len(),
        });
    }
    if threads <= 1 || iter.len() < par::PAR_MIN_ROWS {
        return agg_runs(iter, items, func, 0..iter.len());
    }
    // cut the row space into ~threads ranges, advanced to the next group
    // boundary so no group run is split across workers
    let per = iter.len().div_ceil(threads).max(1);
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    while start < iter.len() {
        let mut end = (start + per).min(iter.len());
        while end < iter.len() && iter[end] == iter[end - 1] {
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    let parts = par::map_ranges(ranges, threads, |r| agg_runs(iter, items, func, r));
    let mut groups = Vec::new();
    let mut values = Vec::new();
    for part in parts {
        let part = part?;
        groups.extend(part.groups);
        values.extend(part.values);
    }
    Ok(Aggregated { groups, values })
}

/// Reduce the group runs inside `range` (whose bounds must sit on group
/// boundaries) — the shared core of the sequential and parallel variants.
fn agg_runs(
    iter: &[i64],
    items: &Column,
    func: AggFunc,
    range: std::ops::Range<usize>,
) -> Result<Aggregated> {
    let mut groups = Vec::new();
    let mut values = Vec::new();
    let mut start = range.start;
    while start < range.end {
        let g = iter[start];
        let mut end = start + 1;
        while end < range.end && iter[end] == g {
            end += 1;
        }
        groups.push(g);
        // Dictionary fast path: min/max of a Dict column is the min/max
        // *code* of the group (the dictionary is sorted), so no Item is ever
        // materialised and no string is compared.
        let value = match (items, func) {
            (Column::Dict { codes, dict }, AggFunc::Min) => {
                let c = codes[start..end].iter().min().expect("non-empty group");
                Item::Str(dict.str_of(*c).clone())
            }
            (Column::Dict { codes, dict }, AggFunc::Max) => {
                let c = codes[start..end].iter().max().expect("non-empty group");
                Item::Str(dict.str_of(*c).clone())
            }
            _ => {
                let slice: Vec<Item> = (start..end).map(|i| items.item(i)).collect();
                finish(func, &slice)?
            }
        };
        values.push(value);
        start = end;
    }
    Ok(Aggregated { groups, values })
}

/// Aggregate with no order assumption (hash grouping); group output order is
/// ascending group key for determinism.
pub fn aggregate_hash(iter: &[i64], items: &Column, func: AggFunc) -> Result<Aggregated> {
    if iter.len() != items.len() {
        return Err(EngineError::LengthMismatch {
            left: iter.len(),
            right: items.len(),
        });
    }
    let mut buckets: HashMap<i64, Vec<Item>> = HashMap::new();
    for (i, &g) in iter.iter().enumerate() {
        buckets.entry(g).or_default().push(items.item(i));
    }
    let mut keys: Vec<i64> = buckets.keys().copied().collect();
    keys.sort_unstable();
    let mut values = Vec::with_capacity(keys.len());
    for k in &keys {
        values.push(finish(func, &buckets[k])?);
    }
    Ok(Aggregated {
        groups: keys,
        values,
    })
}

/// Count rows per group for a *complete* dense group domain `1..=ngroups`,
/// returning zero for groups with no rows.  `fn:count` over possibly-empty
/// sequences needs this (an empty sequence still contributes a count of 0 in
/// its iteration).
pub fn count_per_dense_group(iter: &[i64], ngroups: usize) -> Vec<i64> {
    let mut counts = vec![0i64; ngroups];
    for &g in iter {
        if g >= 1 && (g as usize) <= ngroups {
            counts[g as usize - 1] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(v: &[i64]) -> Column {
        Column::Int(v.to_vec())
    }

    #[test]
    fn grouped_count_sum_avg() {
        let iter = vec![1, 1, 2, 3, 3, 3];
        let col = items(&[10, 20, 5, 1, 2, 3]);
        let c = aggregate_grouped(&iter, &col, AggFunc::Count).unwrap();
        assert_eq!(c.groups, vec![1, 2, 3]);
        assert_eq!(
            c.values
                .iter()
                .map(|i| i.as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![2, 1, 3]
        );
        let s = aggregate_grouped(&iter, &col, AggFunc::Sum).unwrap();
        assert_eq!(s.values[0].as_int().unwrap(), 30);
        let a = aggregate_grouped(&iter, &col, AggFunc::Avg).unwrap();
        assert!((a.values[2].as_number().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn grouped_min_max() {
        let iter = vec![1, 1, 2];
        let col = items(&[5, 3, 9]);
        let mn = aggregate_grouped(&iter, &col, AggFunc::Min).unwrap();
        let mx = aggregate_grouped(&iter, &col, AggFunc::Max).unwrap();
        assert_eq!(mn.values[0].as_int().unwrap(), 3);
        assert_eq!(mx.values[0].as_int().unwrap(), 5);
        assert_eq!(mx.values[1].as_int().unwrap(), 9);
    }

    #[test]
    fn hash_matches_grouped_on_sorted_input() {
        let iter = vec![1, 1, 2, 4, 4];
        let col = items(&[3, 1, 7, 2, 8]);
        for f in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            let a = aggregate_grouped(&iter, &col, f).unwrap();
            let b = aggregate_hash(&iter, &col, f).unwrap();
            assert_eq!(a.groups, b.groups);
            assert_eq!(
                a.values
                    .iter()
                    .map(|i| i.string_value())
                    .collect::<Vec<_>>(),
                b.values
                    .iter()
                    .map(|i| i.string_value())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn dict_min_max_runs_on_codes() {
        let iter = vec![1, 1, 1, 2, 2];
        let col = Column::dict_from_strings(["pear", "apple", "plum", "fig", "date"]);
        let mn = aggregate_grouped(&iter, &col, AggFunc::Min).unwrap();
        let mx = aggregate_grouped(&iter, &col, AggFunc::Max).unwrap();
        assert_eq!(mn.values[0].string_value(), "apple");
        assert_eq!(mx.values[0].string_value(), "plum");
        assert_eq!(mn.values[1].string_value(), "date");
        assert_eq!(mx.values[1].string_value(), "fig");
        // the hash variant (item path) agrees
        let hn = aggregate_hash(&iter, &col, AggFunc::Min).unwrap();
        assert_eq!(hn.values[0].string_value(), "apple");
    }

    #[test]
    fn sum_of_non_numeric_errors() {
        let iter = vec![1];
        let col = Column::from_items(vec![Item::str("abc")]);
        assert!(aggregate_grouped(&iter, &col, AggFunc::Sum).is_err());
    }

    #[test]
    fn dense_group_counts_include_empty_groups() {
        let counts = count_per_dense_group(&[1, 1, 3], 4);
        assert_eq!(counts, vec![2, 0, 1, 0]);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(aggregate_grouped(&[1, 2], &items(&[1]), AggFunc::Count).is_err());
        assert!(aggregate_hash(&[1], &items(&[1, 2]), AggFunc::Count).is_err());
    }
}
