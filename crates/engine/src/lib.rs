//! # mxq-engine — column-store relational kernel
//!
//! This crate is the *MonetDB substrate* of the MonetDB/XQuery reproduction:
//! a small, self-contained column-store relational kernel that the Pathfinder
//! style XQuery compiler (crate `mxq-xquery`) targets.
//!
//! It deliberately mirrors the features of the MonetDB kernel that the paper
//! relies on:
//!
//! * **Typed columns** ([`Column`]) holding integers, doubles, strings,
//!   dictionary-encoded strings (dense codes into a shared sorted
//!   [`Dictionary`]), booleans, node references or polymorphic XQuery items
//!   ([`Item`]).
//! * **Tables** ([`Table`]) as ordered collections of named columns, the
//!   `iter|pos|item` sequence encoding being the most prominent instance.
//! * **Physical operators**: multi-column stable sorting ([`sort`]),
//!   positional / hash / radix-partitioned / merge / theta joins ([`join`]),
//!   dense row numbering
//!   with both the sort-based and the streaming hash-based algorithm
//!   ([`rank`], Section 4.1 of the paper), and grouped aggregation ([`agg`]).
//!
//! The kernel is purely in-memory and works chunk-at-a-time: the hot
//! operators also come in `_with(threads)` variants that split their input
//! into fixed-size chunks ([`par`]) and fan the chunks out over scoped
//! `std::thread` workers — no external thread-pool crate.  Every parallel
//! variant produces **bit-identical output** to its sequential counterpart,
//! so the thread count is a pure performance knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod column;
pub mod dict;
pub mod error;
pub mod join;
pub mod par;
pub mod rank;
pub mod sort;
pub mod table;
pub mod value;

pub use column::Column;
pub use dict::Dictionary;
pub use error::{EngineError, Result};
pub use table::Table;
pub use value::{CmpOp, Item, NodeId};
