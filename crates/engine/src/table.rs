//! Tables: ordered collections of equally long named columns.
//!
//! The pervasive instances in MonetDB/XQuery are the `iter|pos|item`
//! sequence encoding and the `pre|size|level` document encoding.

use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::value::Item;

/// An in-memory relational table (all columns have the same length).
#[derive(Debug, Clone, Default)]
pub struct Table {
    cols: Vec<(String, Column)>,
}

impl Table {
    /// Create an empty table with no columns (zero rows, zero columns).
    pub fn new() -> Self {
        Table { cols: Vec::new() }
    }

    /// Create a table from name/column pairs.
    ///
    /// # Errors
    /// Returns an error if the columns do not all have the same length.
    pub fn from_columns(cols: Vec<(&str, Column)>) -> Result<Self> {
        let mut t = Table::new();
        for (name, col) in cols {
            t.add_column(name, col)?;
        }
        Ok(t)
    }

    /// Number of rows (0 for a table with no columns).
    pub fn nrows(&self) -> usize {
        self.cols.first().map(|(_, c)| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.cols.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Whether a column with this name exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.cols.iter().any(|(n, _)| n == name)
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.cols
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))
    }

    /// Mutably borrow a column by name.
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column> {
        self.cols
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))
    }

    /// Add (or replace) a column.  Lengths must agree with existing columns.
    pub fn add_column(&mut self, name: &str, col: Column) -> Result<()> {
        if self.ncols() > 0 && col.len() != self.nrows() {
            return Err(EngineError::LengthMismatch {
                left: self.nrows(),
                right: col.len(),
            });
        }
        if let Some(slot) = self.cols.iter_mut().find(|(n, _)| n == name) {
            slot.1 = col;
        } else {
            self.cols.push((name.to_string(), col));
        }
        Ok(())
    }

    /// Remove a column (no-op if it does not exist).
    pub fn drop_column(&mut self, name: &str) {
        self.cols.retain(|(n, _)| n != name);
    }

    /// Project onto (and implicitly reorder to) the given column names.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let mut t = Table::new();
        for &name in names {
            t.add_column(name, self.column(name)?.clone())?;
        }
        Ok(t)
    }

    /// Rename a column in place.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        match self.cols.iter_mut().find(|(n, _)| n == from) {
            Some(slot) => {
                slot.0 = to.to_string();
                Ok(())
            }
            None => Err(EngineError::UnknownColumn(from.to_string())),
        }
    }

    /// Gather the given row positions (in order, duplicates allowed) from all
    /// columns into a new table.
    pub fn gather(&self, idx: &[usize]) -> Table {
        self.gather_with(idx, 1)
    }

    /// Parallel [`Table::gather`]: each column is gathered chunk-at-a-time on
    /// the worker pool.  Output is identical for any thread count.
    pub fn gather_with(&self, idx: &[usize], threads: usize) -> Table {
        Table {
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (n.clone(), c.gather_with(idx, threads)))
                .collect(),
        }
    }

    /// Keep only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Table> {
        if mask.len() != self.nrows() {
            return Err(EngineError::LengthMismatch {
                left: self.nrows(),
                right: mask.len(),
            });
        }
        let idx: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        Ok(self.gather(&idx))
    }

    /// Append the rows of `other` (disjoint union ∪̇ of the paper); columns
    /// are matched by name and must exist in both tables.
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if self.ncols() == 0 {
            *self = other.clone();
            return Ok(());
        }
        if other.nrows() == 0 {
            return Ok(());
        }
        for (name, col) in &mut self.cols {
            let o = other.column(name)?;
            col.append(o);
        }
        Ok(())
    }

    /// Read an entire row as items (debugging / result extraction).
    pub fn row(&self, i: usize) -> Vec<(String, Item)> {
        self.cols
            .iter()
            .map(|(n, c)| (n.clone(), c.item(i)))
            .collect()
    }

    /// Pretty-print at most `limit` rows (useful in examples and tests).
    pub fn display(&self, limit: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.names().join(" | "));
        out.push('\n');
        for i in 0..self.nrows().min(limit) {
            let row: Vec<String> = self
                .cols
                .iter()
                .map(|(_, c)| c.item(i).string_value())
                .collect();
            out.push_str(&row.join(" | "));
            out.push('\n');
        }
        if self.nrows() > limit {
            out.push_str(&format!("... ({} rows total)\n", self.nrows()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_columns(vec![
            ("iter", Column::Int(vec![1, 2, 3])),
            (
                "item",
                Column::from_items(vec![Item::str("a"), Item::str("b"), Item::str("c")]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.column("iter").unwrap().as_int().unwrap(), &[1, 2, 3]);
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut t = sample();
        assert!(t.add_column("bad", Column::Int(vec![1])).is_err());
    }

    #[test]
    fn add_column_replaces_existing() {
        let mut t = sample();
        t.add_column("iter", Column::Int(vec![7, 8, 9])).unwrap();
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.column("iter").unwrap().as_int().unwrap(), &[7, 8, 9]);
    }

    #[test]
    fn project_rename_gather_filter_append() {
        let mut t = sample();
        let p = t.project(&["item"]).unwrap();
        assert_eq!(p.ncols(), 1);
        t.rename("item", "value").unwrap();
        assert!(t.has_column("value"));
        let g = t.gather(&[2, 0]);
        assert_eq!(g.column("iter").unwrap().as_int().unwrap(), &[3, 1]);
        let f = t.filter(&[false, true, false]).unwrap();
        assert_eq!(f.nrows(), 1);
        let mut a = t.clone();
        a.append(&t).unwrap();
        assert_eq!(a.nrows(), 6);
    }

    #[test]
    fn append_into_empty_table_adopts_schema() {
        let mut empty = Table::new();
        empty.append(&sample()).unwrap();
        assert_eq!(empty.nrows(), 3);
        assert_eq!(empty.ncols(), 2);
    }

    #[test]
    fn dict_columns_flow_through_table_operations() {
        let t = Table::from_columns(vec![
            ("pre", Column::Int(vec![0, 1, 2])),
            ("tag", Column::dict_from_strings(["site", "item", "item"])),
        ])
        .unwrap();
        let g = t.gather(&[2, 0]);
        assert_eq!(g.column("tag").unwrap().item(0).string_value(), "item");
        assert!(matches!(g.column("tag").unwrap(), Column::Dict { .. }));
        let f = t.filter(&[false, true, true]).unwrap();
        assert_eq!(f.nrows(), 2);
        let mut a = t.clone();
        a.append(&t).unwrap();
        assert_eq!(a.nrows(), 6);
        assert!(matches!(a.column("tag").unwrap(), Column::Dict { .. }));
    }
}
