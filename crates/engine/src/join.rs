//! Join algorithms: positional lookup, hash equi-join, a radix-partitioned
//! hash equi-join, merge join, theta (non-equi) joins with a sampling-based
//! "choose-plan", cross products, and anti-joins (difference).
//!
//! The positional variants implement the key observation of Section 4.1 of
//! the paper: joins on densely increasing integer key columns have a fixed
//! hit rate of one and can be answered by address computation instead of
//! hashing or index lookups.
//!
//! # Equi-join strategy
//!
//! [`radix_hash_join`] is the production equi-join of the kernel.  It
//! normalises both key columns once (per *distinct value* for
//! dictionary-encoded columns), partitions both sides by the low bits of the
//! key hash, and builds one small hash table per partition — the classic
//! radix-cluster layout that keeps each build side cache resident.  Two
//! fast paths sit in front of the generic algorithm:
//!
//! * **Shared dictionary, code-to-code**: when both inputs are
//!   [`Column::Dict`] over the *same* dictionary instance (`Arc::ptr_eq`)
//!   and the dictionary contains no numeric strings, string equality is
//!   exactly code equality.  The join is answered with a dense
//!   `code → rows` array — no hashing, no string comparison at all.
//! * **Per-code key normalisation**: any `Dict` input computes its
//!   normalised join key once per dictionary code instead of once per row.
//!
//! [`hash_join_items`] — the original single-table hash join — is retained
//! as the reference implementation; `tests/join_differential.rs` checks the
//! two produce identical pair sets on adversarial generated inputs (NaN-bit
//! doubles, numeric strings, shared and disjoint dictionaries).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::value::{CmpOp, Item};

/// Pairs of matching row indices `(left_row, right_row)` produced by a join.
pub type JoinPairs = (Vec<usize>, Vec<usize>);

/// Normalised join key: numbers (including numeric strings) collapse onto a
/// single numeric key so that XQuery general comparisons between typed and
/// untyped data behave as expected; everything else is compared as a string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    Num(u64),
    Str(Arc<str>),
    Bool(bool),
    Node(u64),
}

fn join_key(item: &Item) -> JoinKey {
    match item {
        Item::Int(i) => JoinKey::Num((*i as f64).to_bits()),
        Item::Dbl(d) => JoinKey::Num(d.to_bits()),
        Item::Bool(b) => JoinKey::Bool(*b),
        Item::Node(n) => JoinKey::Node(((n.frag as u64) << 32) | n.pre as u64),
        Item::Str(s) => match s.trim().parse::<f64>() {
            Ok(d) => JoinKey::Num(d.to_bits()),
            Err(_) => JoinKey::Str(s.clone()),
        },
    }
}

/// Normalised join keys for a whole column.  `Dict` columns pay the
/// normalisation once per dictionary code, every other column once per row.
/// The per-row path fans out over chunk-aligned spans when `threads > 1`.
fn join_keys(col: &Column, threads: usize) -> Vec<JoinKey> {
    match col.dict_parts() {
        Some((codes, dict)) => {
            let per_code: Vec<JoinKey> = (0..dict.len() as u32)
                .map(|c| join_key(&Item::Str(dict.str_of(c).clone())))
                .collect();
            codes
                .iter()
                .map(|&c| per_code[c as usize].clone())
                .collect()
        }
        None => crate::par::map_spans(col.len(), threads, |r| {
            r.map(|i| join_key(&col.item(i))).collect::<Vec<JoinKey>>()
        })
        .into_iter()
        .flatten()
        .collect(),
    }
}

/// Positional lookup: map foreign keys into row offsets of a table whose key
/// column is densely increasing starting at `base`.  The result gives, for
/// each foreign key, the row position `key - base`.
///
/// # Errors
/// Returns an error if any key falls outside `base .. base + len`.
pub fn positional_lookup(keys: &[i64], base: i64, len: usize) -> Result<Vec<usize>> {
    let mut out = Vec::with_capacity(keys.len());
    for &k in keys {
        let off = k - base;
        if off < 0 || off as usize >= len {
            return Err(EngineError::Internal(format!(
                "positional lookup out of range: key {k}, base {base}, len {len}"
            )));
        }
        out.push(off as usize);
    }
    Ok(out)
}

/// Hash equi-join between two integer key columns.  The output is ordered by
/// the left row index (and, within one left row, by right row index), which
/// preserves the `[iter]` order of the left input as required by the ordered
/// duplicate elimination of Section 4.2.
pub fn hash_join_int(left: &[i64], right: &[i64]) -> JoinPairs {
    let mut index: HashMap<i64, Vec<usize>> = HashMap::with_capacity(right.len());
    for (r, &k) in right.iter().enumerate() {
        index.entry(k).or_default().push(r);
    }
    let mut lout = Vec::new();
    let mut rout = Vec::new();
    for (l, &k) in left.iter().enumerate() {
        if let Some(rs) = index.get(&k) {
            for &r in rs {
                lout.push(l);
                rout.push(r);
            }
        }
    }
    (lout, rout)
}

/// Hash equi-join between two item columns with key normalisation.
pub fn hash_join_items(left: &Column, right: &Column) -> JoinPairs {
    let mut index: HashMap<JoinKey, Vec<usize>> = HashMap::with_capacity(right.len());
    for r in 0..right.len() {
        index.entry(join_key(&right.item(r))).or_default().push(r);
    }
    let mut lout = Vec::new();
    let mut rout = Vec::new();
    for l in 0..left.len() {
        if let Some(rs) = index.get(&join_key(&left.item(l))) {
            for &r in rs {
                lout.push(l);
                rout.push(r);
            }
        }
    }
    (lout, rout)
}

/// Maximum number of radix bits used to partition the key hash space (2^6 =
/// 64 partitions).  The actual partition count adapts to the build-side
/// size, so tiny inputs pay no fan-out cost at all.
const RADIX_BITS: u32 = 6;

/// Build-side rows per partition the partitioning aims for.
const ROWS_PER_PARTITION: usize = 256;

fn hash_key(k: &JoinKey) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut h);
    h.finish()
}

/// Radix-partitioned hash equi-join between two item columns with XQuery key
/// normalisation.  Produces exactly the pair set of [`hash_join_items`], in
/// the same `(left, right)` index order.
///
/// When both columns are dictionary-encoded over the same dictionary
/// instance and the dictionary holds no numeric strings, the join degrades
/// to a dense code-to-code lookup (no hashing).  Otherwise both sides are
/// hashed once (per code for `Dict` inputs), split into `2^RADIX_BITS`
/// partitions by the low hash bits, and joined partition by partition.
pub fn radix_hash_join(left: &Column, right: &Column) -> JoinPairs {
    radix_hash_join_with(left, right, 1)
}

/// Partition-parallel [`radix_hash_join`]: key normalisation and hashing
/// fan out over chunk-aligned row spans, and the per-partition build+probe
/// loop fans out over partition ranges (each partition is an independent
/// join — the radix layout's natural parallel work unit).  The final
/// `(left, right)` sort restores one canonical order, so the pair list is
/// identical for any thread count.
pub fn radix_hash_join_with(left: &Column, right: &Column, threads: usize) -> JoinPairs {
    if let (Some((lcodes, ldict)), Some((rcodes, rdict))) = (left.dict_parts(), right.dict_parts())
    {
        if Arc::ptr_eq(ldict, rdict) {
            return if ldict.any_numeric() {
                code_join_numeric(lcodes, rcodes, ldict)
            } else {
                code_join(lcodes, rcodes, ldict.len())
            };
        }
    }

    let lkeys = join_keys(left, threads);
    let rkeys = join_keys(right, threads);
    // partition only as much as the build side warrants: with fewer than
    // ROWS_PER_PARTITION build rows a single hash table is already cache
    // resident and partitioning would be pure overhead
    let radix_bits = (right.len() / ROWS_PER_PARTITION)
        .next_power_of_two()
        .trailing_zeros()
        .min(RADIX_BITS);
    let nparts = 1usize << radix_bits;
    let mask = (nparts - 1) as u64;

    if nparts == 1 {
        // degenerate radix: one cache-resident hash table, probed in left
        // order — output needs no re-sort
        let mut build: HashMap<&JoinKey, Vec<usize>> = HashMap::with_capacity(rkeys.len());
        for (r, k) in rkeys.iter().enumerate() {
            build.entry(k).or_default().push(r);
        }
        let mut lout = Vec::new();
        let mut rout = Vec::new();
        for (l, k) in lkeys.iter().enumerate() {
            if let Some(rs) = build.get(k) {
                for &r in rs {
                    lout.push(l);
                    rout.push(r);
                }
            }
        }
        return (lout, rout);
    }

    // hash in parallel, then scatter the rows into partitions sequentially
    let partition = |keys: &[JoinKey]| -> Vec<Vec<usize>> {
        let part_of: Vec<u16> = crate::par::map_spans(keys.len(), threads, |r| {
            keys[r]
                .iter()
                .map(|k| (hash_key(k) & mask) as u16)
                .collect::<Vec<u16>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); nparts];
        for (row, &p) in part_of.iter().enumerate() {
            parts[p as usize].push(row);
        }
        parts
    };
    let lparts = partition(&lkeys);
    let rparts = partition(&rkeys);

    // each partition joins independently; workers take partition ranges and
    // emit their own pair lists, concatenated in partition order
    let per = nparts.div_ceil(threads.max(1)).max(1);
    let ranges: Vec<std::ops::Range<usize>> = (0..nparts)
        .step_by(per)
        .map(|p| p..(p + per).min(nparts))
        .collect();
    let chunks: Vec<Vec<(usize, usize)>> = crate::par::map_ranges(ranges, threads, |pr| {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for p in pr {
            if lparts[p].is_empty() || rparts[p].is_empty() {
                continue;
            }
            let mut build: HashMap<&JoinKey, Vec<usize>> = HashMap::with_capacity(rparts[p].len());
            for &r in &rparts[p] {
                build.entry(&rkeys[r]).or_default().push(r);
            }
            for &l in &lparts[p] {
                if let Some(rs) = build.get(&lkeys[l]) {
                    for &r in rs {
                        pairs.push((l, r));
                    }
                }
            }
        }
        pairs
    });
    let mut pairs: Vec<(usize, usize)> = chunks.concat();
    // restore the (left, right) index order hash_join_items produces
    pairs.sort_unstable();
    (
        pairs.iter().map(|&(l, _)| l).collect(),
        pairs.into_iter().map(|(_, r)| r).collect(),
    )
}

/// Code-to-code join over a shared dictionary: a dense `code → right rows`
/// table answers every left probe with one array index.
fn code_join(left: &[u32], right: &[u32], ncodes: usize) -> JoinPairs {
    let mut by_code: Vec<Vec<usize>> = vec![Vec::new(); ncodes];
    for (r, &c) in right.iter().enumerate() {
        by_code[c as usize].push(r);
    }
    let mut lout = Vec::new();
    let mut rout = Vec::new();
    for (l, &c) in left.iter().enumerate() {
        for &r in &by_code[c as usize] {
            lout.push(l);
            rout.push(r);
        }
    }
    (lout, rout)
}

/// Code-to-code join over a shared dictionary that *does* contain numeric
/// strings.  Non-numeric entries still join through the dense code table
/// (two distinct non-numeric codes never compare equal, and a non-numeric
/// string never equals a number); numeric entries join through a small map
/// keyed by their normalised `f64` bits, so `"10"` meets `"10.0"` exactly as
/// the generic per-row normalisation would have it.
fn code_join_numeric(left: &[u32], right: &[u32], dict: &crate::dict::Dictionary) -> JoinPairs {
    let mut by_code: Vec<Vec<usize>> = vec![Vec::new(); dict.len()];
    let mut by_num: HashMap<u64, Vec<usize>> = HashMap::new();
    for (r, &c) in right.iter().enumerate() {
        match dict.numeric_key_of(c) {
            Some(bits) => by_num.entry(bits).or_default().push(r),
            None => by_code[c as usize].push(r),
        }
    }
    let mut lout = Vec::new();
    let mut rout = Vec::new();
    for (l, &c) in left.iter().enumerate() {
        let rows = match dict.numeric_key_of(c) {
            Some(bits) => by_num.get(&bits).map(Vec::as_slice).unwrap_or(&[]),
            None => &by_code[c as usize],
        };
        for &r in rows {
            lout.push(l);
            rout.push(r);
        }
    }
    (lout, rout)
}

/// Merge join between two *sorted* integer key columns (ascending).
pub fn merge_join_int(left: &[i64], right: &[i64]) -> JoinPairs {
    let mut lout = Vec::new();
    let mut rout = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        match left[i].cmp(&right[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // emit the full cross block of equal keys
                let k = left[i];
                let li0 = i;
                while i < left.len() && left[i] == k {
                    i += 1;
                }
                let rj0 = j;
                while j < right.len() && right[j] == k {
                    j += 1;
                }
                for li in li0..i {
                    for rj in rj0..j {
                        lout.push(li);
                        rout.push(rj);
                    }
                }
            }
        }
    }
    (lout, rout)
}

/// Nested-loop theta join evaluating `left[i] op right[j]` with XQuery value
/// comparison semantics.  Output ordered by `(left, right)` index.
pub fn theta_join_nested(left: &Column, right: &Column, op: CmpOp) -> JoinPairs {
    let litems = left.to_items();
    let ritems = right.to_items();
    let mut lout = Vec::new();
    let mut rout = Vec::new();
    for (l, li) in litems.iter().enumerate() {
        for (r, ri) in ritems.iter().enumerate() {
            if li.compare(op, ri) {
                lout.push(l);
                rout.push(r);
            }
        }
    }
    (lout, rout)
}

/// Sort-based ("index lookup") theta join: sort the right input once and
/// answer each left probe with a binary search over the sorted run.  The
/// output is ordered on the left index only; within one left index the right
/// matches come in right-*value* order, so a refine sort on the right index
/// is needed if `[left,right]` index order is required (Section 4.2).
pub fn theta_join_indexed(left: &Column, right: &Column, op: CmpOp) -> JoinPairs {
    let ritems = right.to_items();
    let mut order: Vec<usize> = (0..ritems.len()).collect();
    order.sort_by(|&a, &b| ritems[a].total_cmp(&ritems[b]));

    let mut lout = Vec::new();
    let mut rout = Vec::new();
    for l in 0..left.len() {
        let li = left.item(l);
        for &r in &order {
            if li.compare(op, &ritems[r]) {
                lout.push(l);
                rout.push(r);
            }
        }
    }
    (lout, rout)
}

/// Estimate the hit rate of a theta join from a small sample (the run-time
/// "choose-plan" of Section 4.2) and pick nested-loop for high hit rates and
/// the indexed variant for moderate ones.
pub fn theta_join_choose(left: &Column, right: &Column, op: CmpOp, sample: usize) -> JoinPairs {
    let hit = estimate_hit_rate(left, right, op, sample);
    if hit > 0.25 {
        theta_join_nested(left, right, op)
    } else {
        theta_join_indexed(left, right, op)
    }
}

/// Estimate the fraction of probe pairs that satisfy the predicate by
/// evaluating a bounded sample join.
pub fn estimate_hit_rate(left: &Column, right: &Column, op: CmpOp, sample: usize) -> f64 {
    let ln = left.len().min(sample.max(1));
    let rn = right.len().min(sample.max(1));
    if ln == 0 || rn == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for l in 0..ln {
        let li = left.item(l);
        for r in 0..rn {
            if li.compare(op, &right.item(r)) {
                hits += 1;
            }
        }
    }
    hits as f64 / (ln * rn) as f64
}

/// Cross product index pairs: every left row with every right row, ordered by
/// the left index.
pub fn cross_pairs(nleft: usize, nright: usize) -> JoinPairs {
    let mut lout = Vec::with_capacity(nleft * nright);
    let mut rout = Vec::with_capacity(nleft * nright);
    for l in 0..nleft {
        for r in 0..nright {
            lout.push(l);
            rout.push(r);
        }
    }
    (lout, rout)
}

/// Anti-join (difference, `\` of the paper): indices of left rows whose key
/// does not appear in the right key column.
pub fn anti_join_int(left: &[i64], right: &[i64]) -> Vec<usize> {
    let set: std::collections::HashSet<i64> = right.iter().copied().collect();
    left.iter()
        .enumerate()
        .filter_map(|(i, k)| (!set.contains(k)).then_some(i))
        .collect()
}

/// Semi-join: indices of left rows whose key appears in the right key column.
pub fn semi_join_int(left: &[i64], right: &[i64]) -> Vec<usize> {
    let set: std::collections::HashSet<i64> = right.iter().copied().collect();
    left.iter()
        .enumerate()
        .filter_map(|(i, k)| set.contains(k).then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_lookup_dense_keys() {
        let idx = positional_lookup(&[3, 5, 4], 3, 3).unwrap();
        assert_eq!(idx, vec![0, 2, 1]);
        assert!(positional_lookup(&[9], 3, 3).is_err());
    }

    #[test]
    fn hash_join_preserves_left_order() {
        let left = vec![1, 2, 2, 3];
        let right = vec![2, 1, 2];
        let (l, r) = hash_join_int(&left, &right);
        // key 3 has no partner; output stays ordered by the left row index and,
        // within one left row, by the right insertion order.
        assert_eq!(l, vec![0, 1, 1, 2, 2]);
        assert_eq!(r, vec![1, 0, 2, 0, 2]);
    }

    #[test]
    fn hash_join_items_numeric_string_match() {
        let left = Column::from_items(vec![Item::Int(10), Item::str("abc")]);
        let right = Column::from_items(vec![Item::str("10"), Item::str("abc")]);
        let (l, r) = hash_join_items(&left, &right);
        assert_eq!(l, vec![0, 1]);
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn radix_join_matches_reference_on_mixed_items() {
        let left = Column::from_items(vec![
            Item::Int(10),
            Item::str("abc"),
            Item::Dbl(f64::NAN),
            Item::str("3.5"),
            Item::Bool(true),
        ]);
        let right = Column::from_items(vec![
            Item::str("10"),
            Item::str("abc"),
            Item::Dbl(f64::NAN),
            Item::Dbl(3.5),
            Item::Bool(true),
            Item::Int(10),
        ]);
        let (rl, rr) = radix_hash_join(&left, &right);
        let (hl, hr) = hash_join_items(&left, &right);
        assert_eq!((rl, rr), (hl, hr), "identical pairs in identical order");
    }

    #[test]
    fn radix_join_shared_dictionary_code_path() {
        use crate::dict::Dictionary;
        let (lcodes, dict) = Dictionary::encode(["item", "person", "item"]);
        let (rcodes, _) = Dictionary::encode(["person", "item"]);
        // re-encode the right side against the *same* dictionary instance
        let rcodes: Vec<u32> = rcodes
            .iter()
            .map(|_| 0)
            .zip(["person", "item"])
            .map(|(_, s)| dict.code_of(s).unwrap())
            .collect();
        let left = Column::Dict {
            codes: lcodes,
            dict: dict.clone(),
        };
        let right = Column::Dict {
            codes: rcodes,
            dict: dict.clone(),
        };
        let (rl, rr) = radix_hash_join(&left, &right);
        let (hl, hr) = hash_join_items(&left, &right);
        assert_eq!((rl, rr), (hl, hr));
    }

    #[test]
    fn radix_join_dict_with_numeric_strings_normalises() {
        // "10" must join Int(10) even when the left side is dictionary
        // encoded — the code-to-code fast path must not kick in here.
        let left = Column::dict_from_strings(["10", "abc"]);
        let right = Column::from_items(vec![Item::Int(10), Item::str("abc")]);
        let (l, r) = radix_hash_join(&left, &right);
        assert_eq!(l, vec![0, 1]);
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn radix_join_shared_numeric_dictionary_matches_reference() {
        use crate::dict::Dictionary;
        // a mixed dictionary: ids and numeric strings side by side, with two
        // distinct entries ("10" / "10.0") that normalise to the same number
        let dict = Dictionary::new(["person0", "10", "10.0", "3.5", "abc"]);
        let enc =
            |rows: &[&str]| -> Vec<u32> { rows.iter().map(|s| dict.code_of(s).unwrap()).collect() };
        let left = Column::Dict {
            codes: enc(&["person0", "10", "3.5", "abc"]),
            dict: dict.clone(),
        };
        let right = Column::Dict {
            codes: enc(&["10.0", "person0", "person0", "3.5", "10"]),
            dict: dict.clone(),
        };
        let (rl, rr) = radix_hash_join(&left, &right);
        let (hl, hr) = hash_join_items(&left, &right);
        assert_eq!((rl, rr), (hl, hr), "identical pairs in identical order");
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let left = vec![1, 2, 2, 4, 7];
        let right = vec![2, 2, 3, 4, 4];
        let (ml, mr) = merge_join_int(&left, &right);
        let (hl, hr) = hash_join_int(&left, &right);
        let mut m: Vec<(usize, usize)> = ml.into_iter().zip(mr).collect();
        let mut h: Vec<(usize, usize)> = hl.into_iter().zip(hr).collect();
        m.sort();
        h.sort();
        assert_eq!(m, h);
    }

    #[test]
    fn theta_join_lt() {
        let left = Column::Int(vec![1, 5]);
        let right = Column::Int(vec![2, 6]);
        let (l, r) = theta_join_nested(&left, &right, CmpOp::Lt);
        assert_eq!(l, vec![0, 0, 1]);
        assert_eq!(r, vec![0, 1, 1]);
    }

    #[test]
    fn theta_variants_agree_as_sets() {
        let left = Column::Int(vec![3, 1, 4, 1, 5]);
        let right = Column::Int(vec![2, 7, 1, 8]);
        for op in [CmpOp::Lt, CmpOp::Ge, CmpOp::Ne] {
            let (nl, nr) = theta_join_nested(&left, &right, op);
            let (il, ir) = theta_join_indexed(&left, &right, op);
            let mut a: Vec<_> = nl.iter().zip(nr.iter()).collect();
            let mut b: Vec<_> = il.iter().zip(ir.iter()).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "op {op:?}");
        }
    }

    #[test]
    fn anti_and_semi_join() {
        let left = vec![1, 2, 3, 4];
        let right = vec![2, 4, 9];
        assert_eq!(anti_join_int(&left, &right), vec![0, 2]);
        assert_eq!(semi_join_int(&left, &right), vec![1, 3]);
    }

    #[test]
    fn cross_pairs_counts() {
        let (l, r) = cross_pairs(2, 3);
        assert_eq!(l.len(), 6);
        assert_eq!(l, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(r, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn hit_rate_estimation() {
        let left = Column::Int(vec![1; 10]);
        let right = Column::Int(vec![1; 10]);
        assert!(estimate_hit_rate(&left, &right, CmpOp::Eq, 4) > 0.99);
        let right2 = Column::Int(vec![2; 10]);
        assert_eq!(estimate_hit_rate(&left, &right2, CmpOp::Eq, 4), 0.0);
    }
}
