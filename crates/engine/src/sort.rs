//! Sorting primitives: multi-column stable sort permutations, refine sorting
//! within already sorted groups, and sortedness checks.
//!
//! The peephole optimizer of Section 4.1 distinguishes *full sorts* from
//! *refine sorts* (sorting a minor key within runs of an already ordered
//! major key); both are provided here so the `fig14_sort_reduction`
//! experiment can measure the difference.

use crate::column::Column;
use crate::error::Result;
use crate::par;
use crate::table::Table;

/// Sort direction for one sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (the default everywhere in the XQuery compilation).
    Asc,
    /// Descending (used by `order by … descending`).
    Desc,
}

/// Compute a stable permutation of row indices that sorts the rows
/// lexicographically by the given key columns.
pub fn sort_permutation(keys: &[(&Column, SortOrder)]) -> Vec<usize> {
    let n = keys.first().map(|(c, _)| c.len()).unwrap_or(0);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| compare_rows(keys, a, b));
    idx
}

/// Parallel [`sort_permutation`]: each worker sorts one chunk-aligned span
/// (with a row-index tie-break, which reproduces the stable order), then
/// the sorted runs merge pairwise.  Output is identical to the sequential
/// stable sort for any thread count.
pub fn sort_permutation_with(keys: &[(&Column, SortOrder)], threads: usize) -> Vec<usize> {
    let n = keys.first().map(|(c, _)| c.len()).unwrap_or(0);
    if threads <= 1 || n < par::PAR_MIN_ROWS {
        return sort_permutation(keys);
    }
    let mut runs: Vec<Vec<usize>> = par::map_spans(n, threads, |r| {
        let mut idx: Vec<usize> = r.collect();
        idx.sort_by(|&a, &b| compare_rows(keys, a, b).then(a.cmp(&b)));
        idx
    });
    while runs.len() > 1 {
        // merge runs pairwise; the merges of one round are independent, so
        // they too run on scoped workers
        let mut pairs: Vec<(Vec<usize>, Option<Vec<usize>>)> = Vec::new();
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        runs = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(a, b)| {
                    scope.spawn(move || match b {
                        Some(b) => merge_runs(keys, &a, &b),
                        None => a,
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel merge worker panicked"))
                .collect()
        });
    }
    runs.pop().unwrap_or_default()
}

/// Merge two index runs that are each sorted under `compare_rows` with the
/// row-index tie-break.
fn merge_runs(keys: &[(&Column, SortOrder)], a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if compare_rows(keys, x, y).then(x.cmp(&y)) == std::cmp::Ordering::Greater {
            out.push(y);
            j += 1;
        } else {
            out.push(x);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Compare two rows under the given multi-column key.  Delegates to
/// [`Column::cmp_rows`], which compares bookkeeping columns natively and
/// dictionary-encoded strings by their codes (the sorted dictionary makes
/// code order equal string order, so no payload is touched).
fn compare_rows(keys: &[(&Column, SortOrder)], a: usize, b: usize) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    for (col, order) in keys {
        let ord = col.cmp_rows(a, b);
        let ord = match order {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort a whole table by the named key columns (all ascending).
pub fn sort_table(table: &Table, keys: &[&str]) -> Result<Table> {
    let cols: Vec<(&Column, SortOrder)> = keys
        .iter()
        .map(|k| table.column(k).map(|c| (c, SortOrder::Asc)))
        .collect::<Result<_>>()?;
    let perm = sort_permutation(&cols);
    Ok(table.gather(&perm))
}

/// Sort a table by named keys with explicit per-key directions.
pub fn sort_table_by(table: &Table, keys: &[(&str, SortOrder)]) -> Result<Table> {
    let cols: Vec<(&Column, SortOrder)> = keys
        .iter()
        .map(|(k, o)| table.column(k).map(|c| (c, *o)))
        .collect::<Result<_>>()?;
    let perm = sort_permutation(&cols);
    Ok(table.gather(&perm))
}

/// Refine-sort: the rows are already ordered by `major`; stable-sort each run
/// of equal `major` values by the `minor` keys only.  This is the incremental,
/// pipelinable refinement sort MonetDB provides (Section 4.2).
pub fn refine_sort_permutation(major: &Column, minor: &[(&Column, SortOrder)]) -> Vec<usize> {
    refine_sort_permutation_with(major, minor, 1)
}

/// Parallel [`refine_sort_permutation`]: the runs of equal `major` values
/// are independent sort problems, so workers take contiguous, run-aligned
/// row ranges.  Output is identical for any thread count.
pub fn refine_sort_permutation_with(
    major: &Column,
    minor: &[(&Column, SortOrder)],
    threads: usize,
) -> Vec<usize> {
    let n = major.len();
    let sort_range = |range: std::ops::Range<usize>| -> Vec<usize> {
        let base = range.start;
        let mut idx: Vec<usize> = range.collect();
        let mut start = 0usize;
        while start < idx.len() {
            let mut end = start + 1;
            while end < idx.len()
                && major.cmp_rows(base + end, base + start) == std::cmp::Ordering::Equal
            {
                end += 1;
            }
            idx[start..end].sort_by(|&a, &b| compare_rows(minor, a, b));
            start = end;
        }
        idx
    };
    if threads <= 1 || n < par::PAR_MIN_ROWS {
        return sort_range(0..n);
    }
    // cut the row space into ~threads ranges, each advanced to the next run
    // boundary so no run is split across workers
    let per = n.div_ceil(threads).max(1);
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    while start < n {
        let mut end = (start + per).min(n);
        while end < n && major.cmp_rows(end, end - 1) == std::cmp::Ordering::Equal {
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    par::map_ranges(ranges, threads, sort_range)
        .into_iter()
        .flatten()
        .collect()
}

/// Is the column sorted ascending (non-strictly)?
pub fn is_sorted(col: &Column) -> bool {
    match col {
        Column::Int(v) => v.windows(2).all(|w| w[0] <= w[1]),
        Column::Node(v) => v.windows(2).all(|w| w[0] <= w[1]),
        // sorted dictionary: sortedness of the codes is sortedness of the strings
        Column::Dict { codes, .. } => codes.windows(2).all(|w| w[0] <= w[1]),
        _ => {
            let items = col.to_items();
            items
                .windows(2)
                .all(|w| w[0].total_cmp(&w[1]) != std::cmp::Ordering::Greater)
        }
    }
}

/// Is the table lexicographically sorted on the given columns?
pub fn is_sorted_on(table: &Table, keys: &[&str]) -> Result<bool> {
    let cols: Vec<(&Column, SortOrder)> = keys
        .iter()
        .map(|k| table.column(k).map(|c| (c, SortOrder::Asc)))
        .collect::<Result<_>>()?;
    let n = table.nrows();
    for i in 1..n {
        if compare_rows(&cols, i - 1, i) == std::cmp::Ordering::Greater {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Item;

    #[test]
    fn single_key_sort_is_stable() {
        let key = Column::Int(vec![2, 1, 2, 1]);
        let perm = sort_permutation(&[(&key, SortOrder::Asc)]);
        assert_eq!(perm, vec![1, 3, 0, 2]);
    }

    #[test]
    fn multi_key_sort() {
        let a = Column::Int(vec![1, 1, 0, 0]);
        let b = Column::Int(vec![5, 3, 9, 1]);
        let perm = sort_permutation(&[(&a, SortOrder::Asc), (&b, SortOrder::Asc)]);
        assert_eq!(perm, vec![3, 2, 1, 0]);
    }

    #[test]
    fn descending_sort() {
        let a = Column::Int(vec![1, 3, 2]);
        let perm = sort_permutation(&[(&a, SortOrder::Desc)]);
        assert_eq!(perm, vec![1, 2, 0]);
    }

    #[test]
    fn refine_sort_only_touches_groups() {
        let major = Column::Int(vec![1, 1, 2, 2]);
        let minor = Column::Int(vec![9, 3, 7, 1]);
        let perm = refine_sort_permutation(&major, &[(&minor, SortOrder::Asc)]);
        assert_eq!(perm, vec![1, 0, 3, 2]);
    }

    #[test]
    fn sortedness_checks() {
        assert!(is_sorted(&Column::Int(vec![1, 2, 2, 3])));
        assert!(!is_sorted(&Column::Int(vec![2, 1])));
        let t = Table::from_columns(vec![
            ("a", Column::Int(vec![1, 1, 2])),
            ("b", Column::Int(vec![1, 2, 0])),
        ])
        .unwrap();
        assert!(is_sorted_on(&t, &["a", "b"]).unwrap());
        assert!(!is_sorted_on(&t, &["b"]).unwrap());
    }

    #[test]
    fn sort_table_by_name() {
        let t = Table::from_columns(vec![
            ("k", Column::Int(vec![3, 1, 2])),
            (
                "v",
                Column::from_items(vec![Item::str("c"), Item::str("a"), Item::str("b")]),
            ),
        ])
        .unwrap();
        let s = sort_table(&t, &["k"]).unwrap();
        assert_eq!(s.column("k").unwrap().as_int().unwrap(), &[1, 2, 3]);
        assert_eq!(s.column("v").unwrap().item(0).string_value(), "a");
    }
}
