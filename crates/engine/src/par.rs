//! Dependency-free data parallelism over fixed-size row chunks.
//!
//! MonetDB/X100-style kernels work chunk-at-a-time; this module turns the
//! same chunks into parallel work units using only `std::thread::scope` —
//! no thread-pool crate, no work stealing.  Every parallel kernel in this
//! crate follows one contract: **the output is bit-identical to the
//! sequential output for any thread count**, so thread count is a pure
//! performance knob (the CI determinism leg checks exactly this).
//!
//! The thread count flows in from the caller (`ExecConfig::threads`,
//! resolved against the `MXQ_THREADS` environment variable by
//! [`resolve_threads`]); kernels stay sequential below
//! [`PAR_MIN_ROWS`] rows, where spawn overhead would dominate.

use std::ops::Range;

/// Row target of one parallel work chunk.  Spans handed to worker threads
/// are aligned to multiples of this so a worker always processes whole
/// chunks (matching the chunked column image of the storage layer).
pub const CHUNK_ROWS: usize = 1024;

/// Inputs smaller than this stay sequential regardless of the requested
/// thread count — spawn + join overhead would outweigh the work.
pub const PAR_MIN_ROWS: usize = 4 * CHUNK_ROWS;

/// Resolve a requested thread count: a positive value wins as-is, `0`
/// means "auto" — the `MXQ_THREADS` environment variable if set, else 1.
///
/// # Panics
/// Panics loudly when `MXQ_THREADS` is set to anything but a positive
/// integer (matching the `MXQ_SCALE` convention of the bench suite).
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    match std::env::var("MXQ_THREADS") {
        Ok(raw) => raw
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| panic!("MXQ_THREADS must be a positive integer, got `{raw}`")),
        Err(_) => 1,
    }
}

/// Split `0..n` into at most `threads` contiguous spans, each a multiple
/// of [`CHUNK_ROWS`] (except the last).  Returns a single span when the
/// input is too small to parallelise.
pub fn spans(n: usize, threads: usize) -> Vec<Range<usize>> {
    if threads <= 1 || n < PAR_MIN_ROWS {
        // a deliberate one-span list (the whole input), not `(0..n).collect()`
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..n];
    }
    // chunk-align the per-thread quota so workers own whole chunks
    let per = n.div_ceil(threads).div_ceil(CHUNK_ROWS) * CHUNK_ROWS;
    let mut out = Vec::with_capacity(threads);
    let mut at = 0usize;
    while at < n {
        let end = (at + per).min(n);
        out.push(at..end);
        at = end;
    }
    out
}

/// Apply `f` to every span of `0..n` (at most `threads` of them, chunk
/// aligned) on scoped worker threads, returning the results in span order.
/// Falls back to a plain sequential call for a single span.
pub fn map_spans<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let spans = spans(n, threads);
    if spans.len() <= 1 {
        return spans.into_iter().map(f).collect();
    }
    let fref = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|s| scope.spawn(move || fref(s)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel kernel worker panicked"))
            .collect()
    })
}

/// Like [`map_spans`] but over an explicit list of precomputed spans
/// (e.g. group-aligned ranges) — the span list itself is not re-split.
pub fn map_ranges<T, F>(ranges: Vec<Range<usize>>, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if threads <= 1 || ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let fref = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|s| scope.spawn(move || fref(s)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel kernel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_and_align() {
        let s = spans(10 * CHUNK_ROWS + 7, 4);
        assert!(s.len() > 1);
        let mut at = 0;
        for r in &s {
            assert_eq!(r.start, at);
            if r.end != 10 * CHUNK_ROWS + 7 {
                assert_eq!(r.end % CHUNK_ROWS, 0, "span ends chunk aligned");
            }
            at = r.end;
        }
        assert_eq!(at, 10 * CHUNK_ROWS + 7);
    }

    #[test]
    fn small_inputs_stay_sequential() {
        assert_eq!(spans(100, 8), vec![0..100]);
        assert_eq!(spans(0, 8), vec![0..0]);
    }

    #[test]
    fn map_spans_preserves_order() {
        let n = PAR_MIN_ROWS + 123;
        let parts = map_spans(n, 4, |r| r.clone());
        let seq: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(seq, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_explicit_threads() {
        assert_eq!(resolve_threads(3), 3);
    }
}
