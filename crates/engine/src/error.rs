//! Error type shared by all kernel operators.

use std::fmt;

/// Errors raised by the relational kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A column with the given name does not exist in the table.
    UnknownColumn(String),
    /// An operator received a column of an unexpected type.
    TypeMismatch {
        /// What the operator expected (human readable).
        expected: String,
        /// What it actually found.
        found: String,
    },
    /// Two columns that must have equal length do not.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// A value could not be converted (e.g. a non-numeric string cast to a number).
    Conversion(String),
    /// Generic invariant violation inside an operator.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            EngineError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            EngineError::LengthMismatch { left, right } => {
                write!(f, "column length mismatch: {left} vs {right}")
            }
            EngineError::Conversion(msg) => write!(f, "conversion error: {msg}"),
            EngineError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenient result alias used throughout the kernel.
pub type Result<T> = std::result::Result<T, EngineError>;
