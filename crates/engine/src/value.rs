//! Scalar values: node surrogates, polymorphic XQuery items and comparison
//! operators.
//!
//! The paper represents XML nodes by their preorder rank (`pre`), extended
//! with a fragment identifier (`frag`) so that transient trees created by
//! element construction live side by side with persistent documents
//! (Section 5.1).  [`NodeId`] is exactly that pair; document order is the
//! lexicographic `(frag, pre)` order.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Surrogate for an XML node: fragment (document container) id plus preorder rank.
///
/// Ordering of `NodeId`s is document order across fragments, i.e. the
/// lexicographic order on `(frag, pre)` — the order MonetDB/XQuery sorts on
/// (footnote 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// Document container (fragment) the node lives in.
    pub frag: u32,
    /// Preorder rank within the fragment; doubles as node identity.
    pub pre: u32,
}

impl NodeId {
    /// Create a new node surrogate.
    pub fn new(frag: u32, pre: u32) -> Self {
        NodeId { frag, pre }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.frag, self.pre)
    }
}

/// A polymorphic XQuery item as stored in an `item` column.
///
/// The paper keeps a polymorphic item column for simplicity (Section 2.1);
/// we follow suit.  Atomic values carry their implementation type directly,
/// nodes are stored as [`NodeId`] surrogates.
#[derive(Debug, Clone)]
pub enum Item {
    /// `xs:integer`.
    Int(i64),
    /// `xs:double` / `xs:decimal` (single floating point implementation type).
    Dbl(f64),
    /// `xs:string` and untyped atomic text.
    Str(Arc<str>),
    /// `xs:boolean`.
    Bool(bool),
    /// A node reference.
    Node(NodeId),
}

impl Item {
    /// Build a string item from anything stringy.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Item::Str(s.into())
    }

    /// True if the item is a node reference.
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }

    /// Return the node surrogate if this is a node item.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Item::Node(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric view of the item (`None` for non-numeric strings, booleans, nodes).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Item::Int(i) => Some(*i as f64),
            Item::Dbl(d) => Some(*d),
            Item::Str(s) => s.trim().parse::<f64>().ok(),
            Item::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Item::Node(_) => None,
        }
    }

    /// Integer view if the item is an integer (no coercion).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Item::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view (only for boolean items).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Item::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view for string items (no atomization of nodes here — that
    /// requires the document store and is done in the executor).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Item::Str(s) => Some(s),
            _ => None,
        }
    }

    /// XQuery string value of an *atomic* item (nodes are not handled here).
    pub fn string_value(&self) -> String {
        match self {
            Item::Int(i) => i.to_string(),
            Item::Dbl(d) => format_double(*d),
            Item::Str(s) => s.to_string(),
            Item::Bool(b) => b.to_string(),
            Item::Node(n) => format!("node({n})"),
        }
    }

    /// Effective boolean value of a single atomic item.
    pub fn effective_boolean(&self) -> bool {
        match self {
            Item::Bool(b) => *b,
            Item::Int(i) => *i != 0,
            Item::Dbl(d) => *d != 0.0 && !d.is_nan(),
            Item::Str(s) => !s.is_empty(),
            Item::Node(_) => true,
        }
    }

    /// A total order used for sorting and duplicate elimination.  Unlike the
    /// XQuery value comparison this never fails: items of different kinds are
    /// ordered by a type rank first.
    pub fn total_cmp(&self, other: &Item) -> Ordering {
        fn rank(i: &Item) -> u8 {
            match i {
                Item::Bool(_) => 0,
                Item::Int(_) | Item::Dbl(_) => 1,
                Item::Str(_) => 2,
                Item::Node(_) => 3,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Item::Bool(a), Item::Bool(b)) => a.cmp(b),
            (Item::Node(a), Item::Node(b)) => a.cmp(b),
            (Item::Str(a), Item::Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => {
                let a = self.as_number().unwrap_or(f64::NAN);
                let b = other.as_number().unwrap_or(f64::NAN);
                a.partial_cmp(&b).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// XQuery-style *value comparison* between two atomic items: numeric if
    /// both sides can be treated as numbers, string comparison otherwise.
    /// Returns `None` when the items are incomparable (e.g. node vs number).
    pub fn value_cmp(&self, other: &Item) -> Option<Ordering> {
        match (self, other) {
            (Item::Node(a), Item::Node(b)) => Some(a.cmp(b)),
            (Item::Bool(a), Item::Bool(b)) => Some(a.cmp(b)),
            (Item::Str(a), Item::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => {
                let a = self.as_number()?;
                let b = other.as_number()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Evaluate a comparison operator with XQuery value-comparison semantics.
    pub fn compare(&self, op: CmpOp, other: &Item) -> bool {
        match self.value_cmp(other) {
            None => false,
            Some(ord) => op.matches(ord),
        }
    }
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.compare(CmpOp::Eq, other)
    }
}

impl From<i64> for Item {
    fn from(v: i64) -> Self {
        Item::Int(v)
    }
}
impl From<i32> for Item {
    fn from(v: i32) -> Self {
        Item::Int(v as i64)
    }
}
impl From<f64> for Item {
    fn from(v: f64) -> Self {
        Item::Dbl(v)
    }
}
impl From<bool> for Item {
    fn from(v: bool) -> Self {
        Item::Bool(v)
    }
}
impl From<&str> for Item {
    fn from(v: &str) -> Self {
        Item::str(v)
    }
}
impl From<String> for Item {
    fn from(v: String) -> Self {
        Item::str(v)
    }
}
impl From<NodeId> for Item {
    fn from(v: NodeId) -> Self {
        Item::Node(v)
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.string_value())
    }
}

/// Format a double the way XQuery serialization does for the common cases:
/// integral values print without a fractional part.
pub fn format_double(d: f64) -> String {
    if d.fract() == 0.0 && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

/// The six comparison operators shared by XQuery general and value comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// equal
    Eq,
    /// not equal
    Ne,
    /// less than
    Lt,
    /// less or equal
    Le,
    /// greater than
    Gt,
    /// greater or equal
    Ge,
}

impl CmpOp {
    /// Does an `Ordering` outcome satisfy the operator?
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with its operands swapped (`a op b` ⇔ `b op.swap() a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// True for the `eq` operator; the existential-join rewrite of Section 4.2
    /// distinguishes equality (hash join + ordered duplicate elimination) from
    /// the order comparisons (min/max aggregate pushdown).
    pub fn is_equality(self) -> bool {
        matches!(self, CmpOp::Eq)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_document_order() {
        let a = NodeId::new(0, 5);
        let b = NodeId::new(0, 7);
        let c = NodeId::new(1, 0);
        assert!(a < b);
        assert!(b < c, "fragments order before pre ranks");
    }

    #[test]
    fn numeric_promotion_in_value_cmp() {
        assert!(Item::Int(3).compare(CmpOp::Lt, &Item::Dbl(3.5)));
        assert!(Item::Dbl(2.0).compare(CmpOp::Eq, &Item::Int(2)));
        assert!(Item::str("10").compare(CmpOp::Gt, &Item::Int(9)));
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert!(Item::str("abc").compare(CmpOp::Lt, &Item::str("abd")));
        assert!(!Item::str("abc").compare(CmpOp::Eq, &Item::str("ABC")));
    }

    #[test]
    fn incomparable_items_compare_false() {
        let n = Item::Node(NodeId::new(0, 1));
        assert!(!n.compare(CmpOp::Eq, &Item::Int(1)));
        assert!(!Item::str("xyz").compare(CmpOp::Lt, &Item::Int(1)));
    }

    #[test]
    fn effective_boolean_values() {
        assert!(Item::Int(1).effective_boolean());
        assert!(!Item::Int(0).effective_boolean());
        assert!(!Item::str("").effective_boolean());
        assert!(Item::str("x").effective_boolean());
        assert!(Item::Node(NodeId::new(0, 0)).effective_boolean());
    }

    #[test]
    fn cmp_op_swap_roundtrip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.swap().swap(), op);
        }
    }

    #[test]
    fn total_cmp_orders_across_types() {
        let mut v = [Item::str("a"), Item::Int(1), Item::Bool(true)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert!(matches!(v[0], Item::Bool(_)));
        assert!(matches!(v[2], Item::Str(_)));
    }

    #[test]
    fn format_double_integral() {
        assert_eq!(format_double(4.0), "4");
        assert_eq!(format_double(4.5), "4.5");
    }
}
