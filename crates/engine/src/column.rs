//! Typed columns — the BAT-like building block of the kernel.
//!
//! A [`Column`] is a contiguous, densely indexed vector of values of one of
//! seven implementation types.  The polymorphic [`Column::Item`] variant
//! mirrors the polymorphic `item` column of the paper; the monomorphic
//! variants are used for the performance critical bookkeeping columns
//! (`iter`, `pos`, `pre`, `size`, `level`, …) where the positional algorithms
//! of Section 4.1 apply.
//!
//! # Dictionary-encoded strings
//!
//! [`Column::Str`] stores one `Arc<str>` per row — fine for low-duplication
//! payloads, but the XMark hot paths (tag names, attribute names, keyword
//! terms) are highly repetitive.  [`Column::Dict`] stores those as a dense
//! `Vec<u32>` of codes into a shared, **sorted** [`Dictionary`]:
//!
//! * the dictionary is sorted, so code order = string order and `sort`,
//!   `rank` and min/max aggregation run entirely on the codes;
//! * the dictionary is shared (`Arc`), so two columns encoded against the
//!   same instance join code-to-code (see
//!   [`crate::join::radix_hash_join`]) — no string hashing at all;
//! * [`Column::decode`] is the escape hatch: any operator that does not know
//!   about codes can decode to a plain [`Column::Str`] first, and
//!   [`Column::item`] transparently materialises `Item::Str` values, so
//!   untouched operators keep working row-at-a-time.
//!
//! `Dict` columns are produced by the xmldb relational export (tag and
//! attribute-name columns of a shredded document) and by
//! [`Column::dict_from_strings`]; [`Column::from_items`] keeps producing
//! `Str` so existing call sites are unchanged.

use std::sync::Arc;

use crate::dict::Dictionary;
use crate::error::{EngineError, Result};
use crate::value::{Item, NodeId};

/// A single column of a table.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers (iter/pos/pre/size/level and friends).
    Int(Vec<i64>),
    /// 64-bit floats.
    Dbl(Vec<f64>),
    /// Strings (shared, cheap to duplicate).
    Str(Vec<Arc<str>>),
    /// Dictionary-encoded strings: dense codes into a shared sorted
    /// [`Dictionary`] (code order = string order).
    Dict {
        /// Per-row codes, each `< dict.len()`.
        codes: Vec<u32>,
        /// The shared dictionary the codes index into.
        dict: Arc<Dictionary>,
    },
    /// Booleans.
    Bool(Vec<bool>),
    /// Node surrogates.
    Node(Vec<NodeId>),
    /// Polymorphic XQuery items.
    Item(Vec<Item>),
}

impl Column {
    /// An empty integer column.
    pub fn empty_int() -> Self {
        Column::Int(Vec::new())
    }

    /// An empty polymorphic column.
    pub fn empty_item() -> Self {
        Column::Item(Vec::new())
    }

    /// Dictionary-encode a batch of strings into a `Dict` column with a
    /// freshly built (sorted, deduplicated) dictionary.
    pub fn dict_from_strings<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Arc<str>>,
    {
        let (codes, dict) = Dictionary::encode(strings);
        Column::Dict { codes, dict }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Dbl(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
            Column::Bool(v) => v.len(),
            Column::Node(v) => v.len(),
            Column::Item(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human readable type name (used in error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Column::Int(_) => "int",
            Column::Dbl(_) => "dbl",
            Column::Str(_) => "str",
            Column::Dict { .. } => "dict",
            Column::Bool(_) => "bool",
            Column::Node(_) => "node",
            Column::Item(_) => "item",
        }
    }

    /// Read row `i` as a polymorphic [`Item`].
    ///
    /// # Panics
    /// Panics when `i` is out of bounds (columns are densely indexed).
    pub fn item(&self, i: usize) -> Item {
        match self {
            Column::Int(v) => Item::Int(v[i]),
            Column::Dbl(v) => Item::Dbl(v[i]),
            Column::Str(v) => Item::Str(v[i].clone()),
            Column::Dict { codes, dict } => Item::Str(dict.str_of(codes[i]).clone()),
            Column::Bool(v) => Item::Bool(v[i]),
            Column::Node(v) => Item::Node(v[i]),
            Column::Item(v) => v[i].clone(),
        }
    }

    /// Iterate over all rows as items.
    pub fn iter_items(&self) -> impl Iterator<Item = Item> + '_ {
        (0..self.len()).map(move |i| self.item(i))
    }

    /// Collect the whole column into a vector of items.
    pub fn to_items(&self) -> Vec<Item> {
        self.iter_items().collect()
    }

    /// Build a column from a vector of items, choosing the narrowest
    /// monomorphic representation if all items share one type.
    pub fn from_items(items: Vec<Item>) -> Self {
        if !items.is_empty() {
            if items.iter().all(|i| matches!(i, Item::Int(_))) {
                return Column::Int(items.iter().map(|i| i.as_int().unwrap()).collect());
            }
            if items.iter().all(|i| matches!(i, Item::Node(_))) {
                return Column::Node(items.iter().map(|i| i.as_node().unwrap()).collect());
            }
            if items.iter().all(|i| matches!(i, Item::Str(_))) {
                return Column::Str(
                    items
                        .iter()
                        .map(|i| match i {
                            Item::Str(s) => s.clone(),
                            _ => unreachable!(),
                        })
                        .collect(),
                );
            }
            if items.iter().all(|i| matches!(i, Item::Bool(_))) {
                return Column::Bool(items.iter().map(|i| i.as_bool().unwrap()).collect());
            }
        }
        Column::Item(items)
    }

    /// Decode a dictionary column into a plain string column; every other
    /// variant is returned as a cheap clone.  Operators that do not exploit
    /// codes use this as their escape hatch.
    pub fn decode(&self) -> Column {
        match self {
            Column::Dict { codes, dict } => {
                Column::Str(codes.iter().map(|&c| dict.str_of(c).clone()).collect())
            }
            other => other.clone(),
        }
    }

    /// The codes and dictionary of a `Dict` column, or `None` for every
    /// other variant.
    pub fn dict_parts(&self) -> Option<(&[u32], &Arc<Dictionary>)> {
        match self {
            Column::Dict { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Borrow the integer payload; error if this is not an integer column.
    pub fn as_int(&self) -> Result<&[i64]> {
        match self {
            Column::Int(v) => Ok(v),
            other => Err(EngineError::TypeMismatch {
                expected: "int".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Borrow the boolean payload; error otherwise.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self {
            Column::Bool(v) => Ok(v),
            other => Err(EngineError::TypeMismatch {
                expected: "bool".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Borrow the node payload; error otherwise.
    pub fn as_node(&self) -> Result<&[NodeId]> {
        match self {
            Column::Node(v) => Ok(v),
            other => Err(EngineError::TypeMismatch {
                expected: "node".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Integer view of row `i` with coercion from the polymorphic variant.
    pub fn int_at(&self, i: usize) -> Result<i64> {
        match self {
            Column::Int(v) => Ok(v[i]),
            Column::Item(v) => v[i]
                .as_int()
                .ok_or_else(|| EngineError::Conversion(format!("item {} is not an integer", v[i]))),
            other => Err(EngineError::TypeMismatch {
                expected: "int".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Compare two rows of this column under the total order used for
    /// sorting.  Monomorphic variants compare natively; a `Dict` column
    /// compares codes only — valid because its dictionary is sorted, so code
    /// order equals string order.
    pub fn cmp_rows(&self, a: usize, b: usize) -> std::cmp::Ordering {
        match self {
            Column::Int(v) => v[a].cmp(&v[b]),
            Column::Node(v) => v[a].cmp(&v[b]),
            Column::Bool(v) => v[a].cmp(&v[b]),
            Column::Str(v) => v[a].as_ref().cmp(v[b].as_ref()),
            Column::Dict { codes, .. } => codes[a].cmp(&codes[b]),
            _ => self.item(a).total_cmp(&self.item(b)),
        }
    }

    /// Gather rows at the given positions into a new column (the classic
    /// positional "fetch join" primitive of a column store).
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(idx.iter().map(|&i| v[i]).collect()),
            Column::Dbl(v) => Column::Dbl(idx.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(idx.iter().map(|&i| v[i].clone()).collect()),
            Column::Dict { codes, dict } => Column::Dict {
                codes: idx.iter().map(|&i| codes[i]).collect(),
                dict: dict.clone(),
            },
            Column::Bool(v) => Column::Bool(idx.iter().map(|&i| v[i]).collect()),
            Column::Node(v) => Column::Node(idx.iter().map(|&i| v[i]).collect()),
            Column::Item(v) => Column::Item(idx.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Parallel [`Column::gather`]: the index list splits into chunk-aligned
    /// spans, each worker gathers its span, and the partial columns
    /// concatenate in span order — identical output for any thread count.
    pub fn gather_with(&self, idx: &[usize], threads: usize) -> Column {
        if threads <= 1 || idx.len() < crate::par::PAR_MIN_ROWS {
            return self.gather(idx);
        }
        let parts = crate::par::map_spans(idx.len(), threads, |r| self.gather(&idx[r]));
        let mut it = parts.into_iter();
        let mut out = it.next().expect("at least one span");
        for p in it {
            out.append(&p);
        }
        out
    }

    /// Filter rows by a boolean mask of the same length.
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        self.filter_with(mask, 1)
    }

    /// Parallel [`Column::filter`]: each worker selects and gathers one
    /// chunk-aligned span of the mask — identical output for any thread
    /// count.
    pub fn filter_with(&self, mask: &[bool], threads: usize) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(EngineError::LengthMismatch {
                left: self.len(),
                right: mask.len(),
            });
        }
        let select = |r: std::ops::Range<usize>| -> Column {
            let idx: Vec<usize> = r.filter(|&i| mask[i]).collect();
            self.gather(&idx)
        };
        if threads <= 1 || mask.len() < crate::par::PAR_MIN_ROWS {
            return Ok(select(0..mask.len()));
        }
        let parts = crate::par::map_spans(mask.len(), threads, select);
        let mut it = parts.into_iter();
        let mut out = it.next().expect("at least one span");
        for p in it {
            out.append(&p);
        }
        Ok(out)
    }

    /// Append another column of the same (or coercible) type; mismatched
    /// types fall back to the polymorphic representation.  Two `Dict`
    /// columns over the same dictionary concatenate codes; over different
    /// dictionaries they are re-encoded against the merged dictionary.
    pub fn append(&mut self, other: &Column) {
        match (&mut *self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Dbl(a), Column::Dbl(b)) => a.extend_from_slice(b),
            (Column::Str(a), Column::Str(b)) => a.extend_from_slice(b),
            (
                Column::Dict { codes, dict },
                Column::Dict {
                    codes: bcodes,
                    dict: bdict,
                },
            ) => {
                if Arc::ptr_eq(dict, bdict) {
                    codes.extend_from_slice(bcodes);
                } else {
                    let (merged, ra, rb) = Dictionary::merge(dict, bdict);
                    for c in codes.iter_mut() {
                        *c = ra[*c as usize];
                    }
                    codes.extend(bcodes.iter().map(|&c| rb[c as usize]));
                    *dict = merged;
                }
            }
            (Column::Str(a), Column::Dict { codes, dict }) => {
                a.extend(codes.iter().map(|&c| dict.str_of(c).clone()));
            }
            (this @ Column::Dict { .. }, Column::Str(_)) => {
                let mut decoded = this.decode();
                decoded.append(other);
                *this = decoded;
            }
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (Column::Node(a), Column::Node(b)) => a.extend_from_slice(b),
            (Column::Item(a), b) => a.extend(b.iter_items()),
            (a, b) => {
                let mut items = a.to_items();
                items.extend(b.iter_items());
                *a = Column::Item(items);
            }
        }
    }

    /// A column holding `n` copies of the same item (loop-lifting of
    /// constants, Section 2.1).
    pub fn repeat(item: &Item, n: usize) -> Column {
        match item {
            Item::Int(v) => Column::Int(vec![*v; n]),
            Item::Dbl(v) => Column::Dbl(vec![*v; n]),
            Item::Str(v) => Column::Str(vec![v.clone(); n]),
            Item::Bool(v) => Column::Bool(vec![*v; n]),
            Item::Node(v) => Column::Node(vec![*v; n]),
        }
    }

    /// A dense integer column `start, start+1, …, start+n-1` — the shape of
    /// every loop relation and of SQL auto-increment keys (Section 4.1).
    pub fn dense(start: i64, n: usize) -> Column {
        Column::Int((0..n as i64).map(|i| start + i).collect())
    }

    /// Check whether an integer column is densely ascending from its first
    /// value (the `dense` column property of the peephole optimizer).
    pub fn is_dense(&self) -> bool {
        match self {
            Column::Int(v) => v
                .iter()
                .enumerate()
                .all(|(i, &x)| x == v.first().copied().unwrap_or(0) + i as i64),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_items_picks_monomorphic_representation() {
        let c = Column::from_items(vec![Item::Int(1), Item::Int(2)]);
        assert!(matches!(c, Column::Int(_)));
        let c = Column::from_items(vec![Item::Int(1), Item::str("x")]);
        assert!(matches!(c, Column::Item(_)));
    }

    #[test]
    fn gather_and_filter() {
        let c = Column::Int(vec![10, 20, 30, 40]);
        let g = c.gather(&[3, 0]);
        assert_eq!(g.as_int().unwrap(), &[40, 10]);
        let f = c.filter(&[true, false, true, false]).unwrap();
        assert_eq!(f.as_int().unwrap(), &[10, 30]);
    }

    #[test]
    fn filter_length_mismatch_is_error() {
        let c = Column::Int(vec![1, 2, 3]);
        assert!(c.filter(&[true]).is_err());
    }

    #[test]
    fn append_mismatched_types_degrades_to_item() {
        let mut c = Column::Int(vec![1]);
        c.append(&Column::Str(vec![Arc::from("x")]));
        assert!(matches!(c, Column::Item(_)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dense_detection() {
        assert!(Column::dense(1, 5).is_dense());
        assert!(Column::Int(vec![4, 5, 6]).is_dense());
        assert!(!Column::Int(vec![1, 3, 4]).is_dense());
        assert!(!Column::Str(vec![]).is_dense());
    }

    #[test]
    fn repeat_builds_constant_column() {
        let c = Column::repeat(&Item::str("even"), 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.item(2).string_value(), "even");
    }

    #[test]
    fn dict_column_round_trip_and_gather() {
        let c = Column::dict_from_strings(["b", "a", "b", "c"]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.type_name(), "dict");
        assert_eq!(c.item(0).string_value(), "b");
        let g = c.gather(&[3, 1]);
        assert_eq!(g.item(0).string_value(), "c");
        assert_eq!(g.item(1).string_value(), "a");
        let decoded = c.decode();
        assert!(matches!(decoded, Column::Str(_)));
        assert_eq!(decoded.item(2).string_value(), "b");
    }

    #[test]
    fn dict_cmp_rows_matches_string_order() {
        let c = Column::dict_from_strings(["mango", "apple", "zebra"]);
        assert_eq!(c.cmp_rows(1, 0), std::cmp::Ordering::Less);
        assert_eq!(c.cmp_rows(2, 0), std::cmp::Ordering::Greater);
        assert_eq!(c.cmp_rows(1, 1), std::cmp::Ordering::Equal);
    }

    #[test]
    fn dict_append_shared_and_merged() {
        let (codes, dict) = crate::dict::Dictionary::encode(["a", "b"]);
        let mut shared = Column::Dict {
            codes,
            dict: dict.clone(),
        };
        let (codes2, _) = crate::dict::Dictionary::encode(["b", "a"]);
        shared.append(&Column::Dict {
            codes: codes2,
            dict: dict.clone(),
        });
        // same dictionary instance: codes concatenate, dict unchanged
        let (codes, d) = shared.dict_parts().unwrap();
        assert!(Arc::ptr_eq(d, &dict));
        assert_eq!(codes.len(), 4);

        // different dictionaries: merged and remapped, strings preserved
        let mut a = Column::dict_from_strings(["a", "c"]);
        let b = Column::dict_from_strings(["b", "a"]);
        a.append(&b);
        let strings: Vec<String> = a.iter_items().map(|i| i.string_value()).collect();
        assert_eq!(strings, ["a", "c", "b", "a"]);
    }

    #[test]
    fn dict_append_str_combinations_stay_stringy() {
        let mut s = Column::Str(vec![Arc::from("x")]);
        s.append(&Column::dict_from_strings(["y"]));
        assert!(matches!(s, Column::Str(_)));
        assert_eq!(s.len(), 2);

        let mut d = Column::dict_from_strings(["x"]);
        d.append(&Column::Str(vec![Arc::from("y")]));
        assert!(matches!(d, Column::Str(_)));
        assert_eq!(d.item(1).string_value(), "y");
    }
}
