//! Typed columns — the BAT-like building block of the kernel.
//!
//! A [`Column`] is a contiguous, densely indexed vector of values of one of
//! six implementation types.  The polymorphic [`Column::Item`] variant mirrors
//! the polymorphic `item` column of the paper; the monomorphic variants are
//! used for the performance critical bookkeeping columns (`iter`, `pos`,
//! `pre`, `size`, `level`, …) where the positional algorithms of Section 4.1
//! apply.

use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::value::{Item, NodeId};

/// A single column of a table.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers (iter/pos/pre/size/level and friends).
    Int(Vec<i64>),
    /// 64-bit floats.
    Dbl(Vec<f64>),
    /// Strings (shared, cheap to duplicate).
    Str(Vec<Arc<str>>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Node surrogates.
    Node(Vec<NodeId>),
    /// Polymorphic XQuery items.
    Item(Vec<Item>),
}

impl Column {
    /// An empty integer column.
    pub fn empty_int() -> Self {
        Column::Int(Vec::new())
    }

    /// An empty polymorphic column.
    pub fn empty_item() -> Self {
        Column::Item(Vec::new())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Dbl(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Node(v) => v.len(),
            Column::Item(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human readable type name (used in error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Column::Int(_) => "int",
            Column::Dbl(_) => "dbl",
            Column::Str(_) => "str",
            Column::Bool(_) => "bool",
            Column::Node(_) => "node",
            Column::Item(_) => "item",
        }
    }

    /// Read row `i` as a polymorphic [`Item`].
    ///
    /// # Panics
    /// Panics when `i` is out of bounds (columns are densely indexed).
    pub fn item(&self, i: usize) -> Item {
        match self {
            Column::Int(v) => Item::Int(v[i]),
            Column::Dbl(v) => Item::Dbl(v[i]),
            Column::Str(v) => Item::Str(v[i].clone()),
            Column::Bool(v) => Item::Bool(v[i]),
            Column::Node(v) => Item::Node(v[i]),
            Column::Item(v) => v[i].clone(),
        }
    }

    /// Iterate over all rows as items.
    pub fn iter_items(&self) -> impl Iterator<Item = Item> + '_ {
        (0..self.len()).map(move |i| self.item(i))
    }

    /// Collect the whole column into a vector of items.
    pub fn to_items(&self) -> Vec<Item> {
        self.iter_items().collect()
    }

    /// Build a column from a vector of items, choosing the narrowest
    /// monomorphic representation if all items share one type.
    pub fn from_items(items: Vec<Item>) -> Self {
        if !items.is_empty() {
            if items.iter().all(|i| matches!(i, Item::Int(_))) {
                return Column::Int(items.iter().map(|i| i.as_int().unwrap()).collect());
            }
            if items.iter().all(|i| matches!(i, Item::Node(_))) {
                return Column::Node(items.iter().map(|i| i.as_node().unwrap()).collect());
            }
            if items.iter().all(|i| matches!(i, Item::Str(_))) {
                return Column::Str(
                    items
                        .iter()
                        .map(|i| match i {
                            Item::Str(s) => s.clone(),
                            _ => unreachable!(),
                        })
                        .collect(),
                );
            }
            if items.iter().all(|i| matches!(i, Item::Bool(_))) {
                return Column::Bool(items.iter().map(|i| i.as_bool().unwrap()).collect());
            }
        }
        Column::Item(items)
    }

    /// Borrow the integer payload; error if this is not an integer column.
    pub fn as_int(&self) -> Result<&[i64]> {
        match self {
            Column::Int(v) => Ok(v),
            other => Err(EngineError::TypeMismatch {
                expected: "int".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Borrow the boolean payload; error otherwise.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self {
            Column::Bool(v) => Ok(v),
            other => Err(EngineError::TypeMismatch {
                expected: "bool".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Borrow the node payload; error otherwise.
    pub fn as_node(&self) -> Result<&[NodeId]> {
        match self {
            Column::Node(v) => Ok(v),
            other => Err(EngineError::TypeMismatch {
                expected: "node".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Integer view of row `i` with coercion from the polymorphic variant.
    pub fn int_at(&self, i: usize) -> Result<i64> {
        match self {
            Column::Int(v) => Ok(v[i]),
            Column::Item(v) => v[i]
                .as_int()
                .ok_or_else(|| EngineError::Conversion(format!("item {} is not an integer", v[i]))),
            other => Err(EngineError::TypeMismatch {
                expected: "int".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Gather rows at the given positions into a new column (the classic
    /// positional "fetch join" primitive of a column store).
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(idx.iter().map(|&i| v[i]).collect()),
            Column::Dbl(v) => Column::Dbl(idx.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(idx.iter().map(|&i| v[i].clone()).collect()),
            Column::Bool(v) => Column::Bool(idx.iter().map(|&i| v[i]).collect()),
            Column::Node(v) => Column::Node(idx.iter().map(|&i| v[i]).collect()),
            Column::Item(v) => Column::Item(idx.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Filter rows by a boolean mask of the same length.
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(EngineError::LengthMismatch {
                left: self.len(),
                right: mask.len(),
            });
        }
        let idx: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        Ok(self.gather(&idx))
    }

    /// Append another column of the same (or coercible) type; mismatched
    /// types fall back to the polymorphic representation.
    pub fn append(&mut self, other: &Column) {
        match (&mut *self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Dbl(a), Column::Dbl(b)) => a.extend_from_slice(b),
            (Column::Str(a), Column::Str(b)) => a.extend_from_slice(b),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (Column::Node(a), Column::Node(b)) => a.extend_from_slice(b),
            (Column::Item(a), b) => a.extend(b.iter_items()),
            (a, b) => {
                let mut items = a.to_items();
                items.extend(b.iter_items());
                *a = Column::Item(items);
            }
        }
    }

    /// A column holding `n` copies of the same item (loop-lifting of
    /// constants, Section 2.1).
    pub fn repeat(item: &Item, n: usize) -> Column {
        match item {
            Item::Int(v) => Column::Int(vec![*v; n]),
            Item::Dbl(v) => Column::Dbl(vec![*v; n]),
            Item::Str(v) => Column::Str(vec![v.clone(); n]),
            Item::Bool(v) => Column::Bool(vec![*v; n]),
            Item::Node(v) => Column::Node(vec![*v; n]),
        }
    }

    /// A dense integer column `start, start+1, …, start+n-1` — the shape of
    /// every loop relation and of SQL auto-increment keys (Section 4.1).
    pub fn dense(start: i64, n: usize) -> Column {
        Column::Int((0..n as i64).map(|i| start + i).collect())
    }

    /// Check whether an integer column is densely ascending from its first
    /// value (the `dense` column property of the peephole optimizer).
    pub fn is_dense(&self) -> bool {
        match self {
            Column::Int(v) => v
                .iter()
                .enumerate()
                .all(|(i, &x)| x == v.first().copied().unwrap_or(0) + i as i64),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_items_picks_monomorphic_representation() {
        let c = Column::from_items(vec![Item::Int(1), Item::Int(2)]);
        assert!(matches!(c, Column::Int(_)));
        let c = Column::from_items(vec![Item::Int(1), Item::str("x")]);
        assert!(matches!(c, Column::Item(_)));
    }

    #[test]
    fn gather_and_filter() {
        let c = Column::Int(vec![10, 20, 30, 40]);
        let g = c.gather(&[3, 0]);
        assert_eq!(g.as_int().unwrap(), &[40, 10]);
        let f = c.filter(&[true, false, true, false]).unwrap();
        assert_eq!(f.as_int().unwrap(), &[10, 30]);
    }

    #[test]
    fn filter_length_mismatch_is_error() {
        let c = Column::Int(vec![1, 2, 3]);
        assert!(c.filter(&[true]).is_err());
    }

    #[test]
    fn append_mismatched_types_degrades_to_item() {
        let mut c = Column::Int(vec![1]);
        c.append(&Column::Str(vec![Arc::from("x")]));
        assert!(matches!(c, Column::Item(_)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dense_detection() {
        assert!(Column::dense(1, 5).is_dense());
        assert!(Column::Int(vec![4, 5, 6]).is_dense());
        assert!(!Column::Int(vec![1, 3, 4]).is_dense());
        assert!(!Column::Str(vec![]).is_dense());
    }

    #[test]
    fn repeat_builds_constant_column() {
        let c = Column::repeat(&Item::str("even"), 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.item(2).string_value(), "even");
    }
}
