//! Row numbering (the ρ operator of the paper).
//!
//! `ρ_{A:⟨C1..Cn⟩/Cg}(R)` extends a relation with a densely numbered column
//! `A`, numbering the tuples of each group defined by `Cg` in the order given
//! by `C1..Cn` — exactly SQL:1999's `DENSE_RANK() OVER (PARTITION BY Cg ORDER
//! BY C1..Cn)` (footnote 2 of the paper).
//!
//! Two physical algorithms are provided:
//!
//! * [`row_number_by_sort`] — the default algorithm that performs a full sort
//!   on `[Cg, C1..Cn]`.
//! * [`row_number_streaming`] — the streaming hash-based numbering enabled by
//!   the `grpord` column property (Section 4.1): when each group's rows are
//!   already in the desired minor order (not necessarily clustered), a counter
//!   per group value suffices and no sort is needed.

use std::collections::HashMap;

use crate::column::Column;
use crate::par;
use crate::sort::{sort_permutation, SortOrder};

/// Number rows within each group, ordering rows by the given key columns.
/// Returns the new column in the *original* row order (1-based, dense per
/// group).  `group` may be `None` for a single global group.
pub fn row_number_by_sort(
    order_keys: &[(&Column, SortOrder)],
    group: Option<&[i64]>,
    nrows: usize,
) -> Vec<i64> {
    // Build the sort key: group column first (ascending), then the minor keys.
    let group_col = group.map(|g| Column::Int(g.to_vec()));
    let mut keys: Vec<(&Column, SortOrder)> = Vec::new();
    if let Some(g) = &group_col {
        keys.push((g, SortOrder::Asc));
    }
    keys.extend(order_keys.iter().copied());
    let perm = if keys.is_empty() {
        (0..nrows).collect::<Vec<_>>()
    } else {
        sort_permutation(&keys)
    };

    let mut out = vec![0i64; nrows];
    let mut counter = 0i64;
    let mut prev_group: Option<i64> = None;
    for &row in &perm {
        let g = group.map(|g| g[row]);
        if g != prev_group {
            counter = 0;
            prev_group = g;
        }
        counter += 1;
        out[row] = counter;
    }
    out
}

/// Streaming row numbering: assumes the input already respects the desired
/// order *within* each group (the `grpord` property), so it simply increments
/// a per-group counter in input order.  Groups do not need to be clustered.
pub fn row_number_streaming(group: &[i64]) -> Vec<i64> {
    let mut counters: HashMap<i64, i64> = HashMap::new();
    group
        .iter()
        .map(|&g| {
            let c = counters.entry(g).or_insert(0);
            *c += 1;
            *c
        })
        .collect()
}

/// Parallel [`row_number_streaming`] in two passes: each worker numbers its
/// chunk-aligned span locally and reports per-group counts; a sequential
/// prefix pass turns the counts into per-span offsets, which a second
/// parallel pass adds back.  Output is identical for any thread count.
pub fn row_number_streaming_with(group: &[i64], threads: usize) -> Vec<i64> {
    if threads <= 1 || group.len() < par::PAR_MIN_ROWS {
        return row_number_streaming(group);
    }
    type SpanPart = (std::ops::Range<usize>, Vec<i64>, HashMap<i64, i64>);
    let parts: Vec<SpanPart> = par::map_spans(group.len(), threads, |r| {
        let mut counters: HashMap<i64, i64> = HashMap::new();
        let nums: Vec<i64> = group[r.clone()]
            .iter()
            .map(|&g| {
                let c = counters.entry(g).or_insert(0);
                *c += 1;
                *c
            })
            .collect();
        (r, nums, counters)
    });
    // per-span offsets: how many rows of each group precede the span
    let mut offsets: Vec<HashMap<i64, i64>> = Vec::with_capacity(parts.len());
    let mut running: HashMap<i64, i64> = HashMap::new();
    for (_, _, counts) in &parts {
        offsets.push(running.clone());
        for (&g, &c) in counts {
            *running.entry(g).or_insert(0) += c;
        }
    }
    let spans: Vec<std::ops::Range<usize>> = (0..parts.len()).map(|i| i..i + 1).collect();
    par::map_ranges(spans, threads, |pr| {
        let (rows, nums, _) = &parts[pr.start];
        let off = &offsets[pr.start];
        rows.clone()
            .zip(nums)
            .map(|(row, &n)| n + off.get(&group[row]).copied().unwrap_or(0))
            .collect::<Vec<i64>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Global dense numbering `1..=n` in the order given by the key columns
/// (a single group).  Used to renumber `iter` columns after loop-lifting.
pub fn dense_number_by(order_keys: &[(&Column, SortOrder)], nrows: usize) -> Vec<i64> {
    row_number_by_sort(order_keys, None, nrows)
}

/// DENSE_RANK proper: equal key rows receive the same rank, ranks are dense.
/// Used for mapping arbitrary (sorted) key values onto a dense domain, e.g.
/// when building new loop relations from `iter|pos` pairs.
pub fn dense_rank(keys: &[(&Column, SortOrder)], nrows: usize) -> Vec<i64> {
    if keys.is_empty() || nrows == 0 {
        return vec![1; nrows];
    }
    let perm = sort_permutation(keys);
    let mut out = vec![0i64; nrows];
    let mut rank = 0i64;
    let mut prev: Option<usize> = None;
    for &row in &perm {
        let bump = match prev {
            None => true,
            Some(p) => keys
                .iter()
                .any(|(c, _)| c.cmp_rows(p, row) != std::cmp::Ordering::Equal),
        };
        if bump {
            rank += 1;
        }
        out[row] = rank;
        prev = Some(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_based_numbering_per_group() {
        // groups: 1,1,2,2 ; order key descending values to check ordering is honored
        let group = vec![1, 1, 2, 2];
        let key = Column::Int(vec![9, 3, 7, 1]);
        let nums = row_number_by_sort(&[(&key, SortOrder::Asc)], Some(&group), 4);
        // group 1: key 3 -> 1, key 9 -> 2 ; group 2: key 1 -> 1, key 7 -> 2
        assert_eq!(nums, vec![2, 1, 2, 1]);
    }

    #[test]
    fn streaming_matches_sort_based_when_grpord_holds() {
        // rows already ordered within groups (groups interleaved!)
        let group = vec![1, 2, 1, 2, 1];
        let pos = Column::Int(vec![1, 1, 2, 2, 3]);
        let sorted = row_number_by_sort(&[(&pos, SortOrder::Asc)], Some(&group), 5);
        let streamed = row_number_streaming(&group);
        assert_eq!(sorted, streamed);
    }

    #[test]
    fn global_dense_numbering() {
        let key = Column::Int(vec![30, 10, 20]);
        let nums = dense_number_by(&[(&key, SortOrder::Asc)], 3);
        assert_eq!(nums, vec![3, 1, 2]);
    }

    #[test]
    fn dense_rank_assigns_equal_ranks() {
        let key = Column::Int(vec![5, 3, 5, 1]);
        let ranks = dense_rank(&[(&key, SortOrder::Asc)], 4);
        assert_eq!(ranks, vec![3, 2, 3, 1]);
    }

    #[test]
    fn empty_inputs() {
        assert!(row_number_streaming(&[]).is_empty());
        assert!(dense_rank(&[], 0).is_empty());
    }
}
