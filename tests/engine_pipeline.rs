//! Cross-crate integration tests: updates feeding queries, multiple
//! documents, optimizer statistics, and the ablation switches.

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::queries::query_text;
use mxq::xmldb::update::{fragment_from_xml, PagedDocument};
use mxq::xmldb::{serialize_document, shred, ShredOptions};
use mxq::xquery::{Database, ExecConfig, Session};
use std::sync::Arc;

fn session() -> Session {
    Arc::new(Database::new()).session()
}

fn session_with_config(config: ExecConfig) -> Session {
    Arc::new(Database::new()).session_with_config(config)
}

#[test]
fn query_after_structural_update() {
    let xml =
        "<site><open_auctions><open_auction id=\"a0\"><bidder><increase>5</increase></bidder>\
               </open_auction></open_auctions></site>";
    let doc = shred("auction.xml", xml, &ShredOptions::default()).unwrap();
    let mut paged = PagedDocument::from_document(&doc, 8, 50);
    let auction = doc.elements_named("open_auction")[0];
    for i in 0..5 {
        paged.insert_last_child(
            auction,
            &fragment_from_xml(&format!("<bidder><increase>{}</increase></bidder>", 10 + i)),
        );
    }
    let updated = serialize_document(&paged.to_document());

    let mut engine = session();
    engine
        .database()
        .load_document("auction.xml", &updated)
        .unwrap();
    let count = engine
        .query("count(doc(\"auction.xml\")/site/open_auctions/open_auction/bidder)")
        .unwrap();
    assert_eq!(count.serialize(), "6");
    let max = engine
        .query("max(doc(\"auction.xml\")//increase/text())")
        .unwrap();
    assert_eq!(max.serialize(), "14");
}

#[test]
fn queries_across_multiple_documents() {
    let mut engine = session();
    engine
        .database()
        .load_document(
            "people.xml",
            "<people><p id=\"1\">Ann</p><p id=\"2\">Bob</p></people>",
        )
        .unwrap();
    engine
        .database()
        .load_document(
            "orders.xml",
            "<orders><o p=\"1\"/><o p=\"1\"/><o p=\"2\"/></orders>",
        )
        .unwrap();
    let r = engine
        .query(
            "for $p in doc(\"people.xml\")/people/p \
             return <r n=\"{$p/text()}\">{count(for $o in doc(\"orders.xml\")/orders/o \
                                               where $o/@p = $p/@id return $o)}</r>",
        )
        .unwrap();
    assert_eq!(r.serialize(), "<r n=\"Ann\">2</r><r n=\"Bob\">1</r>");
}

#[test]
fn order_awareness_reports_avoided_sorts() {
    let xml = generate_xml(&GenParams::with_factor(0.0005));
    let mut optimized = session();
    optimized
        .database()
        .load_document("auction.xml", &xml)
        .unwrap();
    let (_, with) = optimized.query_with_report(query_text(8)).unwrap();

    let mut unoptimized = session_with_config(ExecConfig {
        order_aware: false,
        ..ExecConfig::default()
    });
    unoptimized
        .database()
        .load_document("auction.xml", &xml)
        .unwrap();
    let (_, without) = unoptimized.query_with_report(query_text(8)).unwrap();

    assert!(
        with.stats.sorts_avoided > 0,
        "order-aware execution avoids sorts"
    );
    assert!(
        without.stats.sorts > with.stats.sorts,
        "disabling order awareness performs more sorts ({} vs {})",
        without.stats.sorts,
        with.stats.sorts
    );
}

#[test]
fn loop_lifting_reduces_document_passes() {
    let xml = generate_xml(&GenParams::with_factor(0.0005));
    let mut ll = session();
    ll.database().load_document("auction.xml", &xml).unwrap();
    let (_, with) = ll.query_with_report(query_text(2)).unwrap();

    let mut iterative = session_with_config(ExecConfig {
        loop_lifted_child: false,
        loop_lifted_descendant: false,
        nametest_pushdown: false,
        ..ExecConfig::default()
    });
    iterative
        .database()
        .load_document("auction.xml", &xml)
        .unwrap();
    let (_, without) = iterative.query_with_report(query_text(2)).unwrap();

    assert!(
        without.stats.staircase.passes > with.stats.staircase.passes,
        "iterative staircase joins perform one pass per iteration ({} vs {})",
        without.stats.staircase.passes,
        with.stats.staircase.passes
    );
}

#[test]
fn join_recognition_reduces_materialised_rows() {
    let xml = generate_xml(&GenParams::with_factor(0.001));
    let mut with_join = session();
    with_join
        .database()
        .load_document("auction.xml", &xml)
        .unwrap();
    let (r1, rep1) = with_join.query_with_report(query_text(8)).unwrap();

    let mut without_join = session_with_config(ExecConfig {
        join_recognition: false,
        ..ExecConfig::default()
    });
    without_join
        .database()
        .load_document("auction.xml", &xml)
        .unwrap();
    let (r2, rep2) = without_join.query_with_report(query_text(8)).unwrap();

    assert_eq!(r1.serialize(), r2.serialize());
    assert!(
        rep2.stats.peak_rows > rep1.stats.peak_rows,
        "without join recognition the Cartesian-product intermediate dominates ({} vs {})",
        rep2.stats.peak_rows,
        rep1.stats.peak_rows
    );
}

#[test]
fn plan_sizes_are_in_the_papers_ballpark() {
    // the paper reports an average of 86 operators per XMark plan
    let engine = session();
    let mut total = 0usize;
    for id in [2usize, 3, 8, 9, 10, 11, 12, 19, 20] {
        total += engine.compile(query_text(id)).unwrap().operator_count();
    }
    let avg = total / 9;
    assert!(
        (20..300).contains(&avg),
        "average XMark plan size should be tens of operators, got {avg}"
    );
}

#[test]
fn constructed_results_serialize_as_xml() {
    let xml = generate_xml(&GenParams::with_factor(0.0005));
    let mut engine = session();
    engine
        .database()
        .load_document("auction.xml", &xml)
        .unwrap();
    let q2 = engine.query(query_text(2)).unwrap();
    assert!(q2.serialize().starts_with("<increase"));
    let q20 = engine.query(query_text(20)).unwrap();
    assert!(q20.serialize().starts_with("<result>"));
    assert!(q20.serialize().contains("<preferred>"));
}
