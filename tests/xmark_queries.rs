//! Integration test: the 20 XMark queries run end-to-end on a generated
//! auction document, and the relational engine agrees with the naive
//! DOM-walking interpreter on every one of them, under every optimizer
//! configuration.

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::naive::NaiveInterpreter;
use mxq::xmark::queries::{query_text, QUERY_IDS};
use mxq::xmldb::DocStore;
use mxq::xquery::{Database, ExecConfig};
use std::sync::Arc;

/// Scale factor: `MXQ_SCALE` when set (the CI page-scan smoke job runs at
/// 0.01), else the quick default.
fn factor() -> f64 {
    match std::env::var("MXQ_SCALE") {
        Ok(raw) if !raw.trim().is_empty() => raw
            .trim()
            .parse()
            .expect("MXQ_SCALE must be a positive number"),
        _ => 0.001,
    }
}

fn auction_xml() -> &'static str {
    use std::sync::OnceLock;
    static XML: OnceLock<String> = OnceLock::new();
    XML.get_or_init(|| generate_xml(&GenParams::with_factor(factor())))
}

fn naive_result(query: &str) -> String {
    let mut store = DocStore::new();
    store.load_xml("auction.xml", auction_xml()).unwrap();
    let mut naive = NaiveInterpreter::new(&mut store);
    let items = naive.run(query).expect("naive evaluation");
    naive.serialize(&items)
}

fn engine_result(query: &str, config: ExecConfig) -> String {
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", auction_xml()).unwrap();
    db.session_with_config(config)
        .query(query)
        .expect("relational evaluation")
        .serialize()
        .to_string()
}

#[test]
fn all_xmark_queries_run_and_produce_nontrivial_results() {
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", auction_xml()).unwrap();
    let mut session = db.session();
    for id in QUERY_IDS {
        let r = session
            .query(query_text(id))
            .unwrap_or_else(|e| panic!("Q{id} failed: {e}"));
        // every query has a well-defined (possibly empty) result; most are non-empty
        if ![1, 3, 4].contains(&id) {
            assert!(
                !r.is_empty(),
                "Q{id} unexpectedly returned the empty sequence"
            );
        }
    }
}

#[test]
fn relational_engine_matches_naive_interpreter_on_all_queries() {
    for id in QUERY_IDS {
        let q = query_text(id);
        let expected = naive_result(q);
        let got = engine_result(q, ExecConfig::default());
        assert_eq!(got, expected, "Q{id} differs between engines");
    }
}

#[test]
fn optimizations_do_not_change_results() {
    let configs = [
        ("naive", ExecConfig::naive()),
        (
            "no-join-recognition",
            ExecConfig {
                join_recognition: false,
                ..ExecConfig::default()
            },
        ),
        (
            "no-order-awareness",
            ExecConfig {
                order_aware: false,
                ..ExecConfig::default()
            },
        ),
        (
            "no-nametest-pushdown",
            ExecConfig {
                nametest_pushdown: false,
                ..ExecConfig::default()
            },
        ),
        (
            "no-minmax-existential",
            ExecConfig {
                existential_minmax: false,
                ..ExecConfig::default()
            },
        ),
    ];
    // the join queries and a representative sample of the rest
    for id in [1, 2, 3, 5, 6, 8, 9, 11, 12, 14, 15, 17, 19, 20] {
        let q = query_text(id);
        let reference = engine_result(q, ExecConfig::default());
        for (name, cfg) in configs {
            let got = engine_result(q, cfg);
            assert_eq!(got, reference, "Q{id} differs under config `{name}`");
        }
    }
}

/// Thread count is a pure performance knob: all 20 queries must serialize
/// identically whether the kernels run single-threaded or fanned out over
/// worker threads.  (CI additionally runs the whole suite under
/// `MXQ_THREADS=4`, covering the env-var "auto" path.)
#[test]
fn results_identical_across_thread_counts() {
    for id in QUERY_IDS {
        let q = query_text(id);
        let single = engine_result(
            q,
            ExecConfig {
                threads: 1,
                ..ExecConfig::default()
            },
        );
        for threads in [2, 4] {
            let parallel = engine_result(
                q,
                ExecConfig {
                    threads,
                    ..ExecConfig::default()
                },
            );
            assert_eq!(parallel, single, "Q{id} differs at {threads} threads");
        }
    }
}
