//! Multi-threaded smoke test for the shared-database API: 8 reader threads
//! hammer two shared `Prepared` statements (XMark Q1 with an external
//! `$site` variable, and XMark Q8) against one `Arc<Database>` while a
//! writer session concurrently applies XQuery Update Facility inserts.
//!
//! The writer's inserts (bidders into open auctions) are disjoint from what
//! Q1 (people) and Q8 (closed auctions) read, so every one of the 800
//! concurrent executions must return exactly the serial oracle — any torn
//! read, dropped snapshot or lock bug shows up as a mismatch.

use std::sync::Arc;

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::queries::query_text;
use mxq::xquery::Database;

const READER_THREADS: usize = 8;
const EXECUTIONS_PER_THREAD: usize = 100;

/// XMark Q1 with the person id supplied as an external variable.
const Q1_EXTERNAL: &str = r#"
declare variable $site external;
for $b in doc("auction.xml")/site/people/person[@id = $site]
return $b/name/text()
"#;

#[test]
fn eight_threads_of_shared_prepared_statements_match_the_serial_oracle() {
    let xml = generate_xml(&GenParams::with_factor(0.0005));
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &xml).unwrap();
    let mut session = db.session();

    let q1 = Arc::new(session.prepare(Q1_EXTERNAL).unwrap());
    let q8 = Arc::new(session.prepare(query_text(8)).unwrap());
    assert_eq!(q1.external_variables(), ["site"]);

    // serial oracle, computed before any concurrent writer runs
    let q1_oracle = q1
        .bind("site", "person0")
        .query()
        .unwrap()
        .serialize()
        .to_string();
    let q8_oracle = q8
        .execute()
        .unwrap()
        .into_query()
        .unwrap()
        .serialize()
        .to_string();
    assert!(!q8_oracle.is_empty(), "Q8 must produce per-person items");

    let auctions: usize = db
        .execute("count(doc(\"auction.xml\")/site/open_auctions/open_auction)")
        .unwrap()
        .into_query()
        .unwrap()
        .serialize()
        .parse()
        .unwrap();
    assert!(auctions > 0);

    let prepares_before = db.stats().prepares;
    let writes_done = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for t in 0..READER_THREADS {
            let q1 = q1.clone();
            let q8 = q8.clone();
            let q1_oracle = q1_oracle.clone();
            let q8_oracle = q8_oracle.clone();
            readers.push(scope.spawn(move || {
                for i in 0..EXECUTIONS_PER_THREAD {
                    if (i + t) % 2 == 0 {
                        let r = q1.bind("site", "person0").query().expect("Q1");
                        assert_eq!(r.serialize(), q1_oracle, "thread {t} execution {i} (Q1)");
                    } else {
                        let r = q8.execute().expect("Q8").into_query().unwrap();
                        assert_eq!(r.serialize(), q8_oracle, "thread {t} execution {i} (Q8)");
                    }
                }
            }));
        }

        // the writer thread: XQUF bidder inserts, disjoint from Q1/Q8 reads
        let writer_db = db.clone();
        let writer = scope.spawn(move || {
            let mut writer_session = writer_db.session();
            let mut writes = 0usize;
            for op in 0..40 {
                let target = op % auctions + 1;
                let stmt = format!(
                    "insert nodes <bidder><date>2006-07-{:02}</date>\
                     <increase>{}.00</increase></bidder> as last into \
                     doc(\"auction.xml\")/site/open_auctions/open_auction[{target}]",
                    1 + op % 28,
                    1 + op % 9
                );
                let report = writer_session.execute_update(&stmt).expect("XQUF insert");
                writes += report.primitives;
            }
            writes
        });

        for reader in readers {
            reader.join().expect("reader thread");
        }
        writer.join().expect("writer thread")
    });
    let prepares_after_run = db.stats().prepares;
    assert_eq!(writes_done, 40, "every insert applied one primitive");

    // the writer really mutated the shared store…
    let bidders_now: usize = db
        .execute("count(doc(\"auction.xml\")/site/open_auctions/open_auction/bidder)")
        .unwrap()
        .into_query()
        .unwrap()
        .serialize()
        .parse()
        .unwrap();
    assert!(bidders_now >= 40, "the 40 inserted bidders are visible");

    // …while the 800 reader executions added no compiles: the only new
    // prepares are the writer's 40 distinct update texts
    assert!(
        prepares_after_run - prepares_before <= 40,
        "readers must not re-parse under load (prepares went {prepares_before} -> {prepares_after_run})"
    );
    assert_eq!(
        q1.executions() + q8.executions(),
        (READER_THREADS * EXECUTIONS_PER_THREAD) as u64 + 2,
        "all concurrent executions went through the two shared plans"
    );
    // and Q1/Q8 still agree with the oracle after the dust settles
    assert_eq!(
        q1.bind("site", "person0").query().unwrap().serialize(),
        q1_oracle
    );
    assert_eq!(
        q8.execute().unwrap().into_query().unwrap().serialize(),
        q8_oracle
    );
}

#[test]
fn concurrent_mixed_workload_driver_smoke() {
    // the bench driver (N reader sessions + 1 writer session) is also part
    // of the public surface; run it small here so the tier-1 suite covers it
    let xml = generate_xml(&GenParams::with_factor(0.0005));
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &xml).unwrap();
    let report = mxq_bench::run_mixed_workload(&db, 4, 75, 40, 7);
    assert_eq!(report.reads + report.writes, 40);
    assert_eq!(report.reader_sessions, 4);
    assert!(report.writes > 0);
    assert!(report.ops_per_sec > 0.0);
    assert!(report.per_session_ops_per_sec > 0.0);
}
