//! Differential testing of the update path: random update scripts applied
//! through the pending-update-list machinery to
//!
//! * the paged scheme ([`PagedDocument`], several page-size/fill configs),
//! * the naive renumbering scheme ([`NaiveDocument`]), and
//! * a reshred of the serialized result (shred ∘ serialize fixpoint)
//!
//! must agree exactly, and every materialized document must satisfy the
//! pre|size|level invariants.  A second suite drives the same comparison
//! end-to-end through `XQueryEngine::execute_update` on an XMark document.

use proptest::prelude::*;

use mxq::engine::NodeId;
use mxq::xmldb::update::{fragment_from_xml, NaiveDocument, PagedDocument};
use mxq::xmldb::{serialize_document, shred, Document, DocumentColumns, NodeKind, ShredOptions};
use mxq::xquery::{Database, PendingUpdateList, UpdatePrimitive};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// random scripts over random trees
// ---------------------------------------------------------------------------

/// A recursive strategy producing small random XML element trees.
fn arb_xml_tree() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        "[a-e]{1,6}".prop_map(|t| format!("<leaf>{t}</leaf>")),
        Just("<empty/>".to_string()),
        "[a-e]{1,4}".prop_map(|v| format!("<node attr=\"{v}\"/>")),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        (
            prop::sample::select(vec!["a", "b", "item", "person", "x"]),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, children)| format!("<{name}>{}</{name}>", children.join("")))
    })
}

/// One symbolic update op; targets are picked by index into the non-root
/// node/element lists of the *snapshot* document.
#[derive(Debug, Clone)]
enum ScriptOp {
    InsertFirst(usize, &'static str),
    InsertLast(usize, &'static str),
    InsertBefore(usize, &'static str),
    InsertAfter(usize, &'static str),
    Delete(usize),
    ReplaceNode(usize, &'static str),
    ReplaceValue(usize, String),
    Rename(usize, &'static str),
    SetAttr(usize, &'static str, String),
    RemoveAttr(usize, &'static str),
}

const FRAGS: [&str; 4] = [
    "<k/>",
    "<k><l/><m>t</m></k>",
    "<p q=\"1\">text</p>",
    "<deep><a><b><c/></b></a></deep>",
];

fn frag_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(FRAGS.to_vec())
}

fn arb_op() -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        (0usize..64, frag_strategy()).prop_map(|(i, f)| ScriptOp::InsertFirst(i, f)),
        (0usize..64, frag_strategy()).prop_map(|(i, f)| ScriptOp::InsertLast(i, f)),
        (0usize..64, frag_strategy()).prop_map(|(i, f)| ScriptOp::InsertBefore(i, f)),
        (0usize..64, frag_strategy()).prop_map(|(i, f)| ScriptOp::InsertAfter(i, f)),
        (0usize..64).prop_map(ScriptOp::Delete),
        (0usize..64, frag_strategy()).prop_map(|(i, f)| ScriptOp::ReplaceNode(i, f)),
        (0usize..64, "[a-d]{0,5}").prop_map(|(i, v)| ScriptOp::ReplaceValue(i, v)),
        (0usize..64, prop::sample::select(vec!["rn1", "rn2"]))
            .prop_map(|(i, n)| ScriptOp::Rename(i, n)),
        (
            0usize..64,
            prop::sample::select(vec!["attr", "zz"]),
            "[a-d]{0,4}"
        )
            .prop_map(|(i, n, v)| ScriptOp::SetAttr(i, n, v)),
        (0usize..64, prop::sample::select(vec!["attr", "zz"]))
            .prop_map(|(i, n)| ScriptOp::RemoveAttr(i, n)),
    ]
}

/// Resolve a script against a snapshot into a conflict-free PUL.  Ops whose
/// index has no valid target (or that would conflict) are skipped — the same
/// resolution is used for every scheme, so the comparison stays exact.
fn resolve(doc: &Document, script: &[ScriptOp]) -> PendingUpdateList {
    let frag_id = 1u32;
    let non_roots: Vec<u32> = (0..doc.len() as u32)
        .filter(|&p| doc.level(p) > 0)
        .collect();
    let elements: Vec<u32> = (0..doc.len() as u32)
        .filter(|&p| doc.kind(p) == NodeKind::Element)
        .collect();
    let pick = |list: &[u32], i: usize| -> Option<u32> {
        if list.is_empty() {
            None
        } else {
            Some(list[i % list.len()])
        }
    };
    let mut pul = PendingUpdateList::new();
    for op in script {
        let prim = match op {
            ScriptOp::InsertFirst(i, f) => {
                pick(&elements, *i).map(|p| UpdatePrimitive::InsertInto {
                    parent: NodeId::new(frag_id, p),
                    first: true,
                    content: fragment_from_xml(f),
                })
            }
            ScriptOp::InsertLast(i, f) => {
                pick(&elements, *i).map(|p| UpdatePrimitive::InsertInto {
                    parent: NodeId::new(frag_id, p),
                    first: false,
                    content: fragment_from_xml(f),
                })
            }
            ScriptOp::InsertBefore(i, f) => {
                pick(&non_roots, *i).map(|p| UpdatePrimitive::InsertBefore {
                    target: NodeId::new(frag_id, p),
                    content: fragment_from_xml(f),
                })
            }
            ScriptOp::InsertAfter(i, f) => {
                pick(&non_roots, *i).map(|p| UpdatePrimitive::InsertAfter {
                    target: NodeId::new(frag_id, p),
                    content: fragment_from_xml(f),
                })
            }
            ScriptOp::Delete(i) => pick(&non_roots, *i).map(|p| UpdatePrimitive::Delete {
                target: NodeId::new(frag_id, p),
            }),
            ScriptOp::ReplaceNode(i, f) => {
                pick(&non_roots, *i).map(|p| UpdatePrimitive::ReplaceNode {
                    target: NodeId::new(frag_id, p),
                    content: fragment_from_xml(f),
                })
            }
            ScriptOp::ReplaceValue(i, v) => {
                pick(&elements, *i).map(|p| UpdatePrimitive::ReplaceValue {
                    target: NodeId::new(frag_id, p),
                    value: v.clone(),
                })
            }
            ScriptOp::Rename(i, n) => pick(&elements, *i).map(|p| UpdatePrimitive::Rename {
                target: NodeId::new(frag_id, p),
                name: n.to_string(),
            }),
            ScriptOp::SetAttr(i, n, v) => {
                pick(&elements, *i).map(|p| UpdatePrimitive::SetAttribute {
                    elem: NodeId::new(frag_id, p),
                    name: n.to_string(),
                    value: v.clone(),
                })
            }
            ScriptOp::RemoveAttr(i, n) => {
                pick(&elements, *i).map(|p| UpdatePrimitive::RemoveAttribute {
                    elem: NodeId::new(frag_id, p),
                    name: n.to_string(),
                })
            }
        };
        if let Some(prim) = prim {
            // conflicting ops (two renames of one node, …) are legitimately
            // rejected — skip them so the scripts stay applicable
            let _ = pul.add(prim);
        }
    }
    pul
}

/// Deletes may nest (delete an ancestor and a descendant): the descendant's
/// snapshot position is consumed by the ancestor delete for reshredding
/// purposes, but both schemes resolve it identically — so only require that
/// the two schemes agree, plus reshred-fixpoint and invariants.
fn check_script(xml: &str, script: &[ScriptOp], page_size: usize, fill: u8) {
    let doc = shred("d.xml", xml, &ShredOptions::default()).expect("generated tree parses");
    let pul = resolve(&doc, script);
    let mut naive = NaiveDocument::from_document(&doc);
    let mut paged = PagedDocument::from_document(&doc, page_size, fill);
    let a = pul.apply_to(1, &mut naive);
    let b = pul.apply_to(1, &mut paged);
    assert_eq!(a, b, "both schemes apply the same primitive count");

    let naive_doc = naive.to_document();
    let paged_doc = paged.to_document();
    naive_doc.check_invariants().unwrap();
    paged_doc.check_invariants().unwrap();
    let naive_xml = serialize_document(&naive_doc);
    let paged_xml = serialize_document(&paged_doc);
    assert_eq!(naive_xml, paged_xml, "paged vs naive disagreement");

    // incremental column maintenance: the image the paged scheme patched
    // primitive-by-primitive must agree exactly with a from-scratch rebuild
    // of the final page state (runs in release too — the engine-level debug
    // assert only covers debug builds)
    paged
        .columns()
        .same_content(&DocumentColumns::new(&paged_doc))
        .expect("incremental vs rebuilt columns diverged");

    // the same must hold at every chunk geometry: rechunk the image to a
    // small chunk size *before* applying, so the in-chunk splice/renumber
    // path is exercised across many chunk boundaries, then diff against a
    // from-scratch rebuild (same_content is chunk-size agnostic)
    for chunk_rows in [16, 64, 256] {
        let mut chunked = PagedDocument::from_document(&doc, page_size, fill);
        chunked.rechunk_columns(chunk_rows);
        let applied = pul.apply_to(1, &mut chunked);
        assert_eq!(applied, b, "chunk size {chunk_rows}: primitive count");
        let chunked_doc = chunked.to_document();
        assert_eq!(
            serialize_document(&chunked_doc),
            paged_xml,
            "chunk size {chunk_rows}: serialized disagreement"
        );
        chunked
            .columns()
            .same_content(&DocumentColumns::new(&chunked_doc))
            .unwrap_or_else(|e| {
                panic!("chunk size {chunk_rows}: incremental vs rebuilt columns diverged: {e}")
            });
    }

    // the published snapshot serves the same logical view as the pages
    let snap = paged.snapshot();
    assert_eq!(serialize_document(&snap), paged_xml);

    // reshred of the serialized result must be a fixpoint with the same
    // node count (guards against corrupt size/level maintenance that still
    // happens to serialize identically)
    if !paged_xml.is_empty() && paged_doc.fragment_roots().len() == 1 {
        let reshred = shred("re.xml", &paged_xml, &ShredOptions::default())
            .expect("serialized update result must reparse");
        assert_eq!(serialize_document(&reshred), paged_xml);
        assert_eq!(reshred.len(), paged_doc.len(), "node count after reshred");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_scripts_agree_across_schemes(
        xml in arb_xml_tree(),
        script in prop::collection::vec(arb_op(), 1..12),
    ) {
        check_script(&xml, &script, 8, 75);
    }

    #[test]
    fn random_scripts_agree_under_small_tight_pages(
        xml in arb_xml_tree(),
        script in prop::collection::vec(arb_op(), 1..10),
    ) {
        // stress page splits: tiny pages, no slack
        check_script(&xml, &script, 4, 100);
    }

    #[test]
    fn random_scripts_agree_under_large_loose_pages(
        xml in arb_xml_tree(),
        script in prop::collection::vec(arb_op(), 1..10),
    ) {
        check_script(&xml, &script, 64, 25);
    }
}

// ---------------------------------------------------------------------------
// end-to-end: XQUF text over an XMark document
// ---------------------------------------------------------------------------

#[test]
fn xmark_mixed_query_update_round_trip() {
    // MXQ_SCALE grows the document (the CI page-scan smoke job uses 0.01)
    let factor: f64 = match std::env::var("MXQ_SCALE") {
        Ok(raw) if !raw.trim().is_empty() => raw
            .trim()
            .parse()
            .expect("MXQ_SCALE must be a positive number"),
        _ => 0.0005,
    };
    let xml = mxq::xmark::gen::generate_xml(&mxq::xmark::gen::GenParams::with_factor(factor));
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &xml).unwrap();
    let mut s = db.session();
    let count = |s: &mut mxq::xquery::Session| -> i64 {
        s.query("count(doc(\"auction.xml\")/site/open_auctions/open_auction/bidder)")
            .unwrap()
            .serialize()
            .parse()
            .unwrap()
    };
    let before = count(&mut s);
    s.execute_update(
        "insert nodes <bidder><date>2006-07-28</date><increase>6.00</increase></bidder> \
         as last into doc(\"auction.xml\")/site/open_auctions/open_auction[1]",
    )
    .unwrap();
    s.execute_update(
        "insert nodes <bidder><date>2006-07-29</date><increase>1.50</increase></bidder> \
         as first into doc(\"auction.xml\")/site/open_auctions/open_auction[1]",
    )
    .unwrap();
    assert_eq!(count(&mut s), before + 2);
    s.execute_update(
        "delete nodes doc(\"auction.xml\")/site/open_auctions/open_auction[1]/bidder[1]",
    )
    .unwrap();
    assert_eq!(count(&mut s), before + 1);
    // the mutated store still answers a real XMark query
    assert!(s.query(mxq::xmark::queries::query_text(1)).is_ok());
    // the serialized paged store state (rendered from pages on demand)
    // reparses cleanly and reshreds to the same incremental column image
    let text = {
        let store = db.store();
        let frag = store.lookup("auction.xml").unwrap();
        serialize_document(&store.container(frag))
    };
    let opts = ShredOptions {
        document_node: true,
        ..ShredOptions::default()
    };
    let reshred = shred("check.xml", &text, &opts).unwrap();
    reshred.check_invariants().unwrap();
    assert_eq!(serialize_document(&reshred), text);
    // structural agreement beyond serialization: the reshred and the paged
    // store must hold the same node count (guards size/level corruption
    // that happens to serialize identically)
    {
        let store = db.store();
        let frag = store.lookup("auction.xml").unwrap();
        use mxq::xmldb::NodeRead;
        assert_eq!(store.container(frag).len(), reshred.len());
    }
    db.document_columns("auction.xml")
        .unwrap()
        .same_content(&DocumentColumns::new(&reshred))
        .expect("published columns diverged from a reshred of the store");
}

/// Durability is a pure persistence knob: the same mixed workload driven
/// through a durable database, crash-recovered from its write-ahead log,
/// must agree byte-for-byte with the in-memory run — which this suite
/// already holds to the paged-vs-naive differential oracle.  The recovered
/// image gets the same reshred-fixpoint and column checks.
#[test]
fn recovered_store_agrees_with_in_memory_oracle() {
    let dir = std::env::temp_dir().join(format!("mxq-dur-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let xml = mxq::xmark::gen::generate_xml(&mxq::xmark::gen::GenParams::with_factor(0.0005));
    let statements = [
        "insert nodes <bidder><date>2006-07-28</date><increase>6.00</increase></bidder> \
         as last into doc(\"auction.xml\")/site/open_auctions/open_auction[1]",
        "insert nodes <bidder><date>2006-07-29</date><increase>1.50</increase></bidder> \
         as first into doc(\"auction.xml\")/site/open_auctions/open_auction[2]",
        "delete nodes doc(\"auction.xml\")/site/open_auctions/open_auction[1]/bidder[1]",
        "replace value of node doc(\"auction.xml\")/site/open_auctions/open_auction[3]/current \
         with \"99.99\"",
        "rename node doc(\"auction.xml\")/site/open_auctions/open_auction[4]/type as \"kind\"",
    ];

    // in-memory oracle
    let mem = Arc::new(Database::new());
    mem.load_document("auction.xml", &xml).unwrap();
    let mut s = mem.session();
    for stmt in &statements {
        s.execute_update(stmt).unwrap();
    }

    // durable run: same statements, half followed by a checkpoint, then a
    // simulated crash (drop without checkpoint) and recovery
    {
        let db = Arc::new(mxq::xquery::Database::open(&dir).unwrap());
        db.load_document("auction.xml", &xml).unwrap();
        let mut s = db.session();
        for (i, stmt) in statements.iter().enumerate() {
            s.execute_update(stmt).unwrap();
            if i == statements.len() / 2 {
                db.checkpoint().unwrap();
            }
        }
    }
    let recovered = mxq::xquery::Database::open(&dir).unwrap();

    let text_of = |db: &Database| {
        let store = db.store();
        let frag = store.lookup("auction.xml").unwrap();
        serialize_document(&store.container(frag))
    };
    let text = text_of(&recovered);
    assert_eq!(text, text_of(&mem), "recovered vs in-memory serialization");
    assert_eq!(recovered.generation(), mem.generation());

    let opts = ShredOptions {
        document_node: true,
        ..ShredOptions::default()
    };
    let reshred = shred("check.xml", &text, &opts).unwrap();
    reshred.check_invariants().unwrap();
    assert_eq!(serialize_document(&reshred), text);
    recovered
        .document_columns("auction.xml")
        .unwrap()
        .same_content(&DocumentColumns::new(&reshred))
        .expect("recovered columns diverged from a reshred of the store");
    recovered
        .document_columns("auction.xml")
        .unwrap()
        .same_content(&mem.document_columns("auction.xml").unwrap())
        .expect("recovered columns diverged from the in-memory oracle's");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Thread count is a pure performance knob: the same mixed query/update
/// workload driven single-threaded and with four worker threads must leave
/// bit-identical column images and serialize identically.  (CI additionally
/// runs the whole suite under `MXQ_THREADS=4`, covering the env-var path.)
#[test]
fn chunked_image_agrees_across_thread_counts() {
    use mxq::xquery::ExecConfig;
    let xml = mxq::xmark::gen::generate_xml(&mxq::xmark::gen::GenParams::with_factor(0.0005));
    let run = |threads: usize| -> (String, DocumentColumns) {
        let db = Arc::new(Database::new());
        db.load_document("auction.xml", &xml).unwrap();
        let mut s = db.session_with_config(ExecConfig {
            threads,
            ..ExecConfig::default()
        });
        s.execute_update(
            "insert nodes <bidder><date>2006-07-30</date><increase>2.25</increase></bidder> \
             as last into doc(\"auction.xml\")/site/open_auctions/open_auction[1]",
        )
        .unwrap();
        s.execute_update(
            "delete nodes doc(\"auction.xml\")/site/open_auctions/open_auction[2]/bidder[1]",
        )
        .unwrap();
        let result = s
            .query("count(doc(\"auction.xml\")/site/open_auctions/open_auction/bidder)")
            .unwrap()
            .serialize()
            .to_string();
        let cols = db.document_columns("auction.xml").unwrap();
        (result, (*cols).clone())
    };
    let (r1, c1) = run(1);
    let (r4, c4) = run(4);
    assert_eq!(r1, r4, "query results differ across thread counts");
    c1.same_content(&c4)
        .expect("column images diverged across thread counts");
}
