//! Static plan analysis over the XMark workload: the verifier accepts all
//! twenty query plans, the simplifier's eliminations and the statically
//! proven code-to-code joins show up in the annotated `explain`, and
//! executing under runtime validation changes no results.

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::queries::query_text;
use mxq::xquery::{Database, ExecConfig};
use std::sync::Arc;

fn xmark_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &generate_xml(&GenParams::with_factor(0.002)))
        .unwrap();
    db
}

#[test]
fn all_twenty_xmark_plans_verify_and_explain() {
    let db = Arc::new(Database::new());
    let session = db.session();
    for id in 1..=20 {
        let s = session
            .explain(query_text(id))
            .unwrap_or_else(|e| panic!("Q{id} failed analysis: {e}"));
        assert!(s.contains("[0]"), "Q{id} explain is empty:\n{s}");
    }
}

#[test]
fn xmark_join_queries_commit_to_the_dictionary_join() {
    // Q8 and Q9 equi-join person ids against buyer/item references; both
    // sides read codes of the document's attribute-value dictionary, so the
    // analyser proves the code-to-code path statically (Q10 feeds one side
    // through distinct-values and Q11/Q12 are theta joins, so they cannot
    // commit)
    let session = Arc::new(Database::new()).session();
    for id in [8, 9] {
        let s = session.explain(query_text(id)).unwrap();
        assert!(
            s.contains("code=code"),
            "Q{id} join not statically committed:\n{s}"
        );
    }
}

#[test]
fn xmark_plans_show_property_driven_eliminations() {
    let session = Arc::new(Database::new()).session();
    // two distinct rewrite kinds across the workload: removed
    // document-order δs and statically committed dictionary joins
    let mut docorder_eliminations = 0;
    let mut join_commitments = 0;
    for id in 1..=20 {
        let s = session.explain(query_text(id)).unwrap();
        if s.contains("removed docorder-δ") {
            docorder_eliminations += 1;
        }
        if s.contains("committed nest(⋈)") {
            join_commitments += 1;
        }
    }
    assert!(
        docorder_eliminations > 0,
        "no XMark plan had a redundant docorder-δ removed"
    );
    assert!(
        join_commitments > 0,
        "no XMark plan had its join statically committed"
    );
}

#[test]
fn xmark_results_are_unchanged_under_runtime_validation() {
    let db = xmark_db();
    let mut plain = db.session();
    let mut checked = db.session_with_config(ExecConfig {
        validate_plans: true,
        ..ExecConfig::default()
    });
    for id in 1..=20 {
        let a = plain.query(query_text(id)).unwrap().serialize().to_string();
        let b = checked
            .query(query_text(id))
            .unwrap_or_else(|e| panic!("Q{id} violated an inferred property: {e}"))
            .serialize()
            .to_string();
        assert_eq!(a, b, "Q{id} diverges under validation");
    }
}

#[test]
fn xmark_join_queries_count_proven_dict_joins() {
    let db = xmark_db();
    let mut session = db.session();
    for id in [8, 9] {
        let (_, report) = session.query_with_report(query_text(id)).unwrap();
        assert!(
            report.stats.proven_dict_joins >= 1,
            "Q{id} executed without a proven dictionary join"
        );
    }
}
