//! Concurrency tests for the per-document write-latch path.
//!
//! * A property suite runs random update scripts from 2/4/8 concurrent
//!   writer sessions on *disjoint* documents and cross-checks against a
//!   serial oracle: because the documents are disjoint, every interleaving
//!   must serialize to exactly the oracle — identical document text,
//!   identical column images, identical store generation, and **zero**
//!   latch waits (disjoint writers must never touch each other's latches).
//! * A conflicting-writers test proves queue-on-latch semantics: writers
//!   hammering one shared document commit atomically, publish in ticket
//!   order (dense generations), and preserve each writer's program order.
//! * Durable rounds check that group-committed, interleaved multi-writer
//!   WAL records replay correctly, including from every record-boundary
//!   prefix of the log (a crash can cut the file anywhere; stamps — not
//!   file order — drive replay).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use mxq::wal::{read_records, SyncPolicy};
use mxq::xmldb::{serialize_document, shred, DocumentColumns, ShredOptions};
use mxq::xquery::{Database, DurabilityOptions};

// ---------------------------------------------------------------------------
// harness
// ---------------------------------------------------------------------------

/// A self-cleaning scratch directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("mxq-cw-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const INIT: &str = "<list><anchor>0</anchor></list>";

fn writer_doc(w: usize) -> String {
    format!("w{w}.xml")
}

/// Serialize the named document straight from the store.
fn doc_text(db: &Database, name: &str) -> String {
    let store = db.store();
    let frag = store.lookup(name).expect("document is loaded");
    serialize_document(&store.container(frag))
}

/// The update-differential bar applied to one document: reshred fixpoint,
/// structural invariants, and agreement of the live column image with a
/// from-scratch shred of the serialized text.
fn assert_doc_integrity(db: &Database, name: &str) {
    let text = doc_text(db, name);
    let opts = ShredOptions {
        document_node: true,
        ..ShredOptions::default()
    };
    let reshred = shred("check.xml", &text, &opts).unwrap();
    reshred.check_invariants().unwrap();
    assert_eq!(serialize_document(&reshred), text, "reshred fixpoint");
    db.document_columns(name)
        .unwrap()
        .same_content(&DocumentColumns::new(&reshred))
        .expect("live columns diverged from a reshred of the store");
}

// ---------------------------------------------------------------------------
// random disjoint-document scripts vs the serial oracle
// ---------------------------------------------------------------------------

/// One always-valid update op against a writer's private document.  Every
/// op is total: `DeleteKey` accepts zero targets, `anchor` always exists
/// and is unique, so any op sequence executes without errors regardless of
/// what ran before it.
#[derive(Debug, Clone)]
enum Op {
    InsertLast(u8, u8),
    InsertFirst(u8, u8),
    DeleteKey(u8),
    ReplaceAnchor(u8),
    InsertIntoAnchor(u8),
}

fn op_statement(doc: &str, op: &Op) -> String {
    match op {
        Op::InsertLast(k, v) => {
            format!("insert nodes <e k=\"{k}\">{v}</e> as last into doc(\"{doc}\")/list")
        }
        Op::InsertFirst(k, v) => {
            format!("insert nodes <e k=\"{k}\">{v}</e> as first into doc(\"{doc}\")/list")
        }
        Op::DeleteKey(k) => format!("delete nodes doc(\"{doc}\")/list/e[@k = \"{k}\"]"),
        Op::ReplaceAnchor(v) => {
            format!("replace value of node doc(\"{doc}\")/list/anchor with \"{v}\"")
        }
        Op::InsertIntoAnchor(v) => {
            format!("insert nodes <m>{v}</m> as last into doc(\"{doc}\")/list/anchor")
        }
    }
}

fn arb_script() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u8..6, 0u8..100).prop_map(|(k, v)| Op::InsertLast(k, v)),
        (0u8..6, 0u8..100).prop_map(|(k, v)| Op::InsertFirst(k, v)),
        (0u8..6).prop_map(Op::DeleteKey),
        (0u8..100).prop_map(Op::ReplaceAnchor),
        (0u8..100).prop_map(Op::InsertIntoAnchor),
    ];
    prop::collection::vec(op, 1..10)
}

/// Run `writers` concurrent sessions, writer `w` applying `scripts[w]` to
/// its private document, then compare every document, the column images and
/// the store generation against a serial oracle — and assert the writers
/// never waited on each other's latches.
fn run_disjoint_round(writers: usize, scripts: &[Vec<Op>]) {
    let db = Arc::new(Database::new());
    for w in 0..writers {
        db.load_document(&writer_doc(w), INIT).unwrap();
    }
    std::thread::scope(|scope| {
        for (w, script) in scripts.iter().take(writers).enumerate() {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                let doc = writer_doc(w);
                for op in script {
                    s.execute_update(&op_statement(&doc, op)).unwrap();
                }
            });
        }
    });

    // the serial oracle: same documents, same scripts, one session
    let oracle = Arc::new(Database::new());
    for w in 0..writers {
        oracle.load_document(&writer_doc(w), INIT).unwrap();
    }
    let mut s = oracle.session();
    for (w, script) in scripts.iter().take(writers).enumerate() {
        let doc = writer_doc(w);
        for op in script {
            s.execute_update(&op_statement(&doc, op)).unwrap();
        }
    }

    for w in 0..writers {
        let name = writer_doc(w);
        assert_eq!(
            doc_text(&db, &name),
            doc_text(&oracle, &name),
            "writer {w}'s document diverged from the serial oracle"
        );
        db.document_columns(&name)
            .unwrap()
            .same_content(&oracle.document_columns(&name).unwrap())
            .expect("concurrent column image diverged from the oracle's");
        assert_doc_integrity(&db, &name);
    }
    // one generation per commit on both sides, and an empty-target delete
    // commits nothing on either side, so the counters must agree exactly
    assert_eq!(db.generation(), oracle.generation(), "generation drift");
    let stats = db.stats();
    assert_eq!(
        stats.latch_waits, 0,
        "disjoint-document writers must never wait on a fragment latch"
    );
    assert_eq!(stats.latch_conflicts, 0, "no snapshot conflicts either");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn disjoint_writers_serialize_to_the_oracle(
        scripts in prop::collection::vec(arb_script(), 8..9),
    ) {
        for writers in [2usize, 4, 8] {
            run_disjoint_round(writers, &scripts);
        }
    }
}

// ---------------------------------------------------------------------------
// conflicting writers on one shared document
// ---------------------------------------------------------------------------

#[test]
fn conflicting_writers_queue_on_the_latch_and_publish_in_ticket_order() {
    const WRITERS: usize = 4;
    const INSERTS: u64 = 25;

    let db = Arc::new(Database::new());
    db.load_document("shared.xml", "<list/>").unwrap();
    let base = db.generation();

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session();
                for i in 0..INSERTS {
                    s.execute_update(&format!(
                        "insert nodes <e w=\"{w}\" i=\"{i}\"/> as last into \
                         doc(\"shared.xml\")/list"
                    ))
                    .unwrap();
                }
            });
        }
    });

    // publishes happened in ticket order and every commit took exactly one
    // generation: dense, no gaps, no lost updates
    assert_eq!(
        db.generation(),
        base + WRITERS as u64 * INSERTS,
        "every commit must advance the generation exactly once"
    );
    let count: u64 = db
        .execute("count(doc(\"shared.xml\")/list/e)")
        .unwrap()
        .into_query()
        .unwrap()
        .serialize()
        .parse()
        .unwrap();
    assert_eq!(count, WRITERS as u64 * INSERTS, "no insert was lost");

    // queue-on-latch semantics: each writer's inserts appear in its own
    // program order (a later insert of writer w can only have committed
    // after its earlier one released the latch)
    let text = doc_text(&db, "shared.xml");
    let mut per_writer: Vec<Vec<u64>> = vec![Vec::new(); WRITERS];
    for piece in text.split("<e ").skip(1) {
        let attrs = piece.split("/>").next().unwrap();
        let w: usize = attrs
            .split("w=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap()
            .parse()
            .unwrap();
        let i: u64 = attrs
            .split("i=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap()
            .parse()
            .unwrap();
        per_writer[w].push(i);
    }
    for (w, order) in per_writer.iter().enumerate() {
        let expect: Vec<u64> = (0..INSERTS).collect();
        assert_eq!(
            order, &expect,
            "writer {w}'s inserts must appear in program order"
        );
    }
    assert_doc_integrity(&db, "shared.xml");
}

// ---------------------------------------------------------------------------
// durable rounds: interleaved multi-writer WAL records
// ---------------------------------------------------------------------------

#[test]
fn group_committed_multi_writer_log_recovers_exactly() {
    const WRITERS: usize = 4;
    const INSERTS: usize = 8;

    let dir = TempDir::new("group-commit");
    let options = DurabilityOptions {
        sync: SyncPolicy::GroupCommit(Duration::from_micros(500)),
        ..DurabilityOptions::default()
    };
    let mut before = Vec::new();
    {
        let db = Arc::new(Database::open_with(dir.path(), options).unwrap());
        for w in 0..WRITERS {
            db.load_document(&writer_doc(w), INIT).unwrap();
        }
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let db = db.clone();
                scope.spawn(move || {
                    let mut s = db.session();
                    let doc = writer_doc(w);
                    for i in 0..INSERTS {
                        s.execute_update(&format!(
                            "insert nodes <e i=\"{i}\"/> as last into doc(\"{doc}\")/list"
                        ))
                        .unwrap();
                    }
                });
            }
        });
        let stats = db.stats();
        let commits = (WRITERS + WRITERS * INSERTS) as u64;
        assert_eq!(
            stats.group_commit_records, commits,
            "every commit went through the group-commit coordinator"
        );
        assert!(stats.group_commit_batches >= 1);
        assert!(stats.group_commit_batches <= commits);
        assert_eq!(
            stats.wal_fsyncs, stats.group_commit_batches,
            "exactly one fsync per group-commit batch"
        );
        assert!(stats.group_commit_batch_min >= 1);
        assert!(stats.group_commit_batch_max <= commits);
        for w in 0..WRITERS {
            before.push(doc_text(&db, &writer_doc(w)));
        }
    }

    // reopen: the interleaved records replay in stamp order and land every
    // document exactly where the writers left it
    let db = Database::open_with(dir.path(), options).unwrap();
    assert_eq!(
        db.stats().recovery_replays,
        (WRITERS + WRITERS * INSERTS) as u64
    );
    for (w, want) in before.iter().enumerate() {
        let name = writer_doc(w);
        assert_eq!(&doc_text(&db, &name), want, "writer {w}'s document");
        assert_doc_integrity(&db, &name);
    }
}

#[test]
fn every_record_boundary_prefix_of_a_multi_writer_log_recovers() {
    const WRITERS: usize = 4;
    const INSERTS: usize = 6;

    // write an interleaved multi-writer log (no fsync needed — we only
    // crash-cut the file after a clean close)
    let dir = TempDir::new("tail-cut");
    let options = DurabilityOptions {
        sync: SyncPolicy::Never,
        ..DurabilityOptions::default()
    };
    {
        let db = Arc::new(Database::open_with(dir.path(), options).unwrap());
        for w in 0..WRITERS {
            db.load_document(&writer_doc(w), INIT).unwrap();
        }
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let db = db.clone();
                scope.spawn(move || {
                    let mut s = db.session();
                    let doc = writer_doc(w);
                    for i in 0..INSERTS {
                        s.execute_update(&format!(
                            "insert nodes <e i=\"{i}\"/> as last into doc(\"{doc}\")/list"
                        ))
                        .unwrap();
                    }
                });
            }
        });
    }

    let wal = dir.path().join("wal.log");
    let scan = read_records(&wal).unwrap();
    assert_eq!(scan.records.len(), WRITERS + WRITERS * INSERTS);
    let bytes = fs::read(&wal).unwrap();
    assert_eq!(bytes.len() as u64, scan.valid_len);

    // a crash preserves an arbitrary file prefix; at record granularity
    // that is any count of leading records (file order, NOT stamp order).
    // Every such prefix must recover: per document the surviving records
    // are a ticket-order prefix of that document's commits.
    let mut offset = 0u64;
    for keep in 0..=scan.records.len() {
        let surviving = &scan.records[..keep];
        let cut = TempDir::new(&format!("tail-cut-{keep}"));
        fs::write(cut.path().join("wal.log"), &bytes[..offset as usize]).unwrap();
        let db = Database::open_with(cut.path(), options).unwrap();

        // replay lands on the highest surviving stamp (stamp-sorted replay)
        let max_stamp = surviving.iter().map(|r| r.generation).max().unwrap_or(0);
        assert_eq!(db.generation(), max_stamp, "prefix of {keep} records");

        // each recovered document holds a program-order prefix of its
        // writer's inserts: i attributes are exactly 0..n in order
        for w in 0..WRITERS {
            let name = writer_doc(w);
            if db.store().lookup(&name).is_none() {
                continue;
            }
            let text = doc_text(&db, &name);
            let seen: Vec<usize> = text
                .split("<e i=\"")
                .skip(1)
                .map(|p| p.split('"').next().unwrap().parse().unwrap())
                .collect();
            let expect: Vec<usize> = (0..seen.len()).collect();
            assert_eq!(
                seen, expect,
                "prefix of {keep} records left writer {w} mid-sequence"
            );
            assert_doc_integrity(&db, &name);
        }
        if keep < scan.records.len() {
            offset += scan.records[keep].encoded_len();
        }
    }
}

// ---------------------------------------------------------------------------
// cross-document read/write statements must serialize (no write skew)
// ---------------------------------------------------------------------------

/// The classic write-skew shape: T1 reads b and writes a (`a := a + b`),
/// T2 reads a and writes b (`b := a + b`).  Because commits latch their
/// READ fragments as well as their write fragments, the two statements
/// conflict and the final pair must be reachable by some serial
/// interleaving of the 2·ROUNDS statements.  A snapshot-isolation
/// anomaly — a commit computed from a stale read of the *other*
/// document — lands outside that set (e.g. both transactions reading
/// (1,1) gives (2,2), which no serial order produces).
#[test]
fn cross_document_read_write_statements_serialize() {
    const ROUNDS: usize = 6;
    const TRIALS: usize = 8;

    // every final (a, b) a serial interleaving can produce
    fn walk(a: i64, b: i64, t1: usize, t2: usize, out: &mut std::collections::HashSet<(i64, i64)>) {
        if t1 == 0 && t2 == 0 {
            out.insert((a, b));
            return;
        }
        if t1 > 0 {
            walk(a + b, b, t1 - 1, t2, out);
        }
        if t2 > 0 {
            walk(a, a + b, t1, t2 - 1, out);
        }
    }
    let mut reachable = std::collections::HashSet::new();
    walk(1, 1, ROUNDS, ROUNDS, &mut reachable);

    for trial in 0..TRIALS {
        let db = Arc::new(Database::new());
        db.load_document("a.xml", "<d><v>1</v></d>").unwrap();
        db.load_document("b.xml", "<d><v>1</v></d>").unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let spawn = |target: &'static str, other: &'static str| {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut s = db.session();
                barrier.wait();
                for _ in 0..ROUNDS {
                    s.execute(&format!(
                        "replace value of node doc(\"{target}\")/d/v with \
                         string(number(doc(\"{target}\")/d/v) + number(doc(\"{other}\")/d/v))"
                    ))
                    .unwrap();
                }
            })
        };
        let t1 = spawn("a.xml", "b.xml");
        let t2 = spawn("b.xml", "a.xml");
        t1.join().unwrap();
        t2.join().unwrap();

        let read = |name: &str| -> i64 {
            let mut s = db.session();
            s.execute(&format!("string(doc(\"{name}\")/d/v)"))
                .unwrap()
                .as_query()
                .unwrap()
                .serialize()
                .parse()
                .unwrap()
        };
        let (a, b) = (read("a.xml"), read("b.xml"));
        assert!(
            reachable.contains(&(a, b)),
            "trial {trial}: final state ({a}, {b}) is not reachable by any \
             serial interleaving — write skew"
        );
        assert_doc_integrity(&db, "a.xml");
        assert_doc_integrity(&db, "b.xml");
    }
}
