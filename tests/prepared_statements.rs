//! The server-style API end to end: shared `Database`, `Session`s, prepared
//! statements with external variables, the plan cache, streaming results,
//! and the store-generation staleness guard.

use std::sync::Arc;

use mxq::engine::Item;
use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::naive::NaiveInterpreter;
use mxq::xmldb::DocStore;
use mxq::xquery::{Database, Error, Params};

/// XMark Q1 with the person id as an external variable (the acceptance
/// query of the API redesign: prepare once, bind `$site`, execute many).
const Q1_EXTERNAL: &str = r#"
declare variable $site external;
for $b in doc("auction.xml")/site/people/person[@id = $site]
return $b/name/text()
"#;

fn xmark_database(factor: f64) -> (Arc<Database>, String) {
    let xml = generate_xml(&GenParams::with_factor(factor));
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &xml).unwrap();
    (db, xml)
}

#[test]
fn prepared_q1_with_external_site_executes_without_reparsing() {
    let (db, xml) = xmark_database(0.0005);
    let mut session = db.session();

    let before = db.stats();
    let stmt = session.prepare(Q1_EXTERNAL).unwrap();
    assert_eq!(stmt.external_variables(), ["site"]);
    assert!(stmt.plan_operators().unwrap() > 5);

    // serial oracle: the naive interpreter over the same document and params
    let mut store = DocStore::new();
    store.load_xml("auction.xml", &xml).unwrap();
    let mut naive = NaiveInterpreter::new(&mut store);

    // re-execute ≥ 2× with different bindings; compile must have happened once
    for person in ["person0", "person1", "person2", "person0"] {
        let result = stmt.bind("site", person).query().unwrap();
        let mut params = Params::new();
        params.set("site", person);
        let oracle = naive.run_with_params(Q1_EXTERNAL, &params).unwrap();
        assert_eq!(
            result.serialize(),
            naive.serialize(&oracle),
            "binding {person}"
        );
    }
    assert_eq!(stmt.executions(), 4);
    let after = db.stats();
    assert_eq!(
        after.prepares - before.prepares,
        1,
        "Q1 was parsed + compiled exactly once for four executions"
    );
    assert_eq!(after.queries - before.queries, 4);
}

#[test]
fn hot_execute_path_is_served_by_the_plan_cache() {
    let (db, _) = xmark_database(0.0005);
    let mut session = db.session();
    let q = "count(doc(\"auction.xml\")/site/people/person)";
    let first = session.query(q).unwrap().serialize().to_string();
    let before = db.stats();
    for _ in 0..10 {
        assert_eq!(session.query(q).unwrap().serialize(), first);
    }
    let after = db.stats();
    assert_eq!(
        after.prepares, before.prepares,
        "no re-parse, no re-compile"
    );
    assert_eq!(after.plan_cache_hits - before.plan_cache_hits, 10);
    assert_eq!(session.stats().plan_cache_hits, 10);
    assert_eq!(session.stats().plan_cache_misses, 1);
}

#[test]
fn statement_auto_detection_round_trip() {
    let db = Arc::new(Database::new());
    db.load_document("doc.xml", "<inventory><item id=\"i1\"/></inventory>")
        .unwrap();
    let mut session = db.session();
    // one entry point for both kinds of text
    let r = session
        .execute("insert nodes <item id=\"i2\"/> as last into doc(\"doc.xml\")/inventory")
        .unwrap();
    assert!(r.is_update());
    assert_eq!(r.as_update().unwrap().primitives, 1);
    let r = session.execute("count(doc(\"doc.xml\")//item)").unwrap();
    assert_eq!(r.as_query().unwrap().serialize(), "2");
    // kind-specific entry points reject the other kind
    assert!(matches!(
        session.query("delete nodes doc(\"doc.xml\")//item"),
        Err(Error::WrongStatementKind { expected: "query" })
    ));
    assert!(matches!(
        session.execute_update("count(doc(\"doc.xml\")//item)"),
        Err(Error::WrongStatementKind { expected: "update" })
    ));
}

#[test]
fn prepared_update_with_external_variable() {
    let db = Arc::new(Database::new());
    db.load_document("doc.xml", "<a><v>old</v></a>").unwrap();
    let mut session = db.session();
    let stmt = session
        .prepare(
            "declare variable $val external; \
             replace value of node doc(\"doc.xml\")/a/v with $val",
        )
        .unwrap();
    assert!(stmt.is_update());
    for val in ["first", "second"] {
        let report = stmt
            .bind("val", val)
            .execute()
            .unwrap()
            .into_update()
            .unwrap();
        assert_eq!(report.primitives, 1);
        assert_eq!(
            session
                .query("doc(\"doc.xml\")/a/v/text()")
                .unwrap()
                .serialize(),
            val
        );
    }
}

#[test]
fn stale_prepared_statements_revalidate_after_updates() {
    // regression for the store-generation guard: a prepared plan executed
    // after an update must observe the post-update store, never the dropped
    // snapshot it cached earlier
    let db = Arc::new(Database::new());
    db.load_document("doc.xml", "<a><b/><b/></a>").unwrap();
    let mut session = db.session();
    let stmt = session.prepare("count(doc(\"doc.xml\")//b)").unwrap();

    assert_eq!(
        stmt.execute().unwrap().into_query().unwrap().serialize(),
        "2"
    );
    assert_eq!(
        stmt.execute().unwrap().into_query().unwrap().serialize(),
        "2"
    );
    assert_eq!(stmt.revalidations(), 0, "no writes → snapshot reused");

    let gen_before = db.generation();
    session
        .execute_update("delete nodes doc(\"doc.xml\")/a/b[1]")
        .unwrap();
    assert!(db.generation() > gen_before, "updates bump the generation");

    assert_eq!(
        stmt.execute().unwrap().into_query().unwrap().serialize(),
        "1",
        "the prepared statement sees the post-update document"
    );
    assert_eq!(stmt.revalidations(), 1, "the stale snapshot was re-taken");

    // results produced *before* an update keep their pinned snapshot
    let result = stmt.execute().unwrap().into_query().unwrap();
    session
        .execute_update("delete nodes doc(\"doc.xml\")/a/b[1]")
        .unwrap();
    assert_eq!(result.serialize(), "1", "results are snapshot-stable");
    assert_eq!(
        stmt.execute().unwrap().into_query().unwrap().serialize(),
        "0"
    );
}

#[test]
fn streaming_results_avoid_the_big_string() {
    let (db, _) = xmark_database(0.0005);
    let mut session = db.session();
    let q = "for $p in doc(\"auction.xml\")/site/people/person return $p/name/text()";
    let materialized = session.query(q).unwrap();
    let expected: Vec<String> = materialized
        .items()
        .iter()
        .map(|i| materialized.serialize_item(i))
        .collect();
    assert!(!expected.is_empty());

    // Session::execute_streaming
    let mut stream = session.execute_streaming(q).unwrap();
    assert_eq!(stream.len(), expected.len());
    let mut streamed = Vec::new();
    while let Some(item) = stream.next() {
        streamed.push(stream.serialize_item(&item));
    }
    assert_eq!(streamed, expected);

    // QueryResult::into_iter
    let items: Vec<Item> = session.query(q).unwrap().into_iter().collect();
    assert_eq!(items.len(), expected.len());
}

#[test]
fn sequence_bindings_and_defaults() {
    let db = Arc::new(Database::new());
    db.load_document("doc.xml", "<a/>").unwrap();
    let mut session = db.session();
    let stmt = session
        .prepare(
            "declare variable $xs external; \
             declare variable $scale external := 10; \
             sum(for $x in $xs return $x * $scale)",
        )
        .unwrap();
    assert_eq!(stmt.external_variables(), ["xs", "scale"]);
    let r = stmt
        .bind_seq("xs", vec![Item::Int(1), Item::Int(2), Item::Int(3)])
        .query()
        .unwrap();
    assert_eq!(r.serialize(), "60");
    let r = stmt
        .bind_seq("xs", vec![Item::Int(1)])
        .bind("scale", 2)
        .query()
        .unwrap();
    assert_eq!(r.serialize(), "2");
    // leaving $xs unbound is an execution-time error (no default)
    assert!(matches!(stmt.execute(), Err(Error::Exec(_))));
    // binding a name the statement does not declare is rejected (a typo
    // must not silently fall back to the default)
    let err = stmt
        .bind_seq("xs", vec![Item::Int(1)])
        .bind("scal", 2)
        .query()
        .unwrap_err();
    assert!(
        err.to_string().contains("scal"),
        "typo'd bind name is reported: {err}"
    );
}

#[test]
fn relational_and_naive_agree_on_external_variables() {
    let db = Arc::new(Database::new());
    let xml = "<site><people><person id=\"p0\"><name>Ann</name></person>\
               <person id=\"p1\"><name>Bob</name></person></people></site>";
    db.load_document("doc.xml", xml).unwrap();
    let mut session = db.session();
    let q = "declare variable $who external; \
             for $p in doc(\"doc.xml\")/site/people/person[@id = $who] \
             return $p/name/text()";
    let stmt = session.prepare(q).unwrap();

    let mut store = DocStore::new();
    store.load_xml("doc.xml", xml).unwrap();
    let mut naive = NaiveInterpreter::new(&mut store);
    for who in ["p0", "p1", "nope"] {
        let mut params = Params::new();
        params.set("who", who);
        let relational = stmt.bind("who", who).query().unwrap();
        let oracle = naive.run_with_params(q, &params).unwrap();
        assert_eq!(relational.serialize(), naive.serialize(&oracle));
    }
}
