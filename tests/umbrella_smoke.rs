//! Smoke test for the umbrella `mxq` crate: every re-exported subsystem is
//! reachable through `mxq::*`, a document round-trips through the relational
//! engine, and an XMark-style FLWOR query agrees with the naive DOM-walking
//! interpreter.

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::NaiveInterpreter;
use mxq::xmldb::DocStore;
use mxq::xquery::Database;
use std::sync::Arc;

/// An XMark-flavoured FLWOR query: path steps, a predicate on an attribute,
/// ordering and element construction.
const FLWOR: &str = r#"
for $p in doc("auction.xml")/site/people/person
where not(empty($p/profile))
order by $p/name/text()
return <who id="{$p/@id}">{$p/name/text()}</who>
"#;

fn naive_result(xml: &str, query: &str) -> String {
    let mut store = DocStore::new();
    store.load_xml("auction.xml", xml).expect("naive load");
    let mut naive = NaiveInterpreter::new(&mut store);
    let items = naive.run(query).expect("naive evaluation");
    naive.serialize(&items)
}

#[test]
fn umbrella_engine_matches_naive_on_flwor_query() {
    let xml = generate_xml(&GenParams::with_factor(0.0005));

    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &xml).expect("load");
    let result = db.session().query(FLWOR).expect("relational evaluation");
    assert!(!result.is_empty(), "profile-carrying people must exist");

    let reference = naive_result(&xml, FLWOR);
    assert_eq!(result.serialize(), reference);
}

#[test]
fn umbrella_reexports_cover_all_subsystems() {
    // engine: build a column directly through the re-export
    let col = mxq::engine::Column::dense(0, 3);
    assert_eq!(col.len(), 3);
    assert!(col.is_dense());

    // xmldb: shred + serialize round-trip
    let doc = mxq::xmldb::shred("t.xml", "<a><b>x</b></a>", &Default::default()).unwrap();
    assert_eq!(mxq::xmldb::serialize_document(&doc), "<a><b>x</b></a>");

    // staircase: a child step over the shredded document
    let mut stats = mxq::staircase::ScanStats::default();
    let kids = mxq::staircase::staircase_step(
        &doc,
        &[0],
        mxq::staircase::Axis::Child,
        &mxq::staircase::NodeTest::AnyKind,
        &mut stats,
    );
    assert_eq!(kids.len(), 1, "<a> has exactly one child element");

    // xquery + xmark: counting query through the server-style facade
    let db = Arc::new(Database::new());
    db.load_document("t.xml", "<a><b/><b/></a>").unwrap();
    assert_eq!(
        db.session()
            .query("count(doc(\"t.xml\")//b)")
            .unwrap()
            .serialize(),
        "2"
    );
    assert_eq!(mxq::xmark::QUERY_IDS.len(), 20);
}
