//! Property-based tests over the core invariants of the system:
//!
//! * shredding and serialization are inverses on arbitrary XML trees;
//! * the pre|size|level invariants hold for every shredded document;
//! * the loop-lifted staircase join agrees with the iterative staircase join
//!   on every axis, for arbitrary trees and arbitrary multi-iteration
//!   contexts, while touching no more document rows than |result|+|context|
//!   for the child axis;
//! * the paged and the naive structural-update schemes produce identical
//!   documents for arbitrary insert/delete sequences;
//! * the relational XQuery engine and the naive interpreter agree on simple
//!   generated queries over arbitrary documents;
//! * string dictionaries round-trip (encode→decode identity), keep their
//!   sortedness invariant (`code_a < code_b ⇔ str_a < str_b`) and stay
//!   deduplicated under merge.

use proptest::prelude::*;

use mxq::engine::{Column, Dictionary};
use mxq::staircase::{looplifted_step, staircase_step, Axis, NodeTest, ScanStats};
use mxq::xmldb::update::{fragment_from_xml, NaiveDocument, PagedDocument};
use mxq::xmldb::NodeKind;
use mxq::xmldb::{serialize_document, shred, Document, ShredOptions};
use mxq::xquery::{Database, ExecConfig};

// ---------------------------------------------------------------------------
// random tree generation
// ---------------------------------------------------------------------------

/// A recursive strategy producing small random XML element trees.
fn arb_xml_tree() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        "[a-e]{1,6}".prop_map(|t| format!("<leaf>{t}</leaf>")),
        Just("<empty/>".to_string()),
        "[a-e]{1,4}".prop_map(|v| format!("<node attr=\"{v}\"/>")),
    ];
    leaf.prop_recursive(4, 64, 5, |inner| {
        (
            prop::sample::select(vec!["a", "b", "item", "person", "x"]),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(name, children)| format!("<{name}>{}</{name}>", children.join("")))
    })
}

fn doc_from(xml: &str) -> Document {
    shred("t.xml", xml, &ShredOptions::default()).expect("generated tree is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shred_serialize_roundtrip(xml in arb_xml_tree()) {
        let doc = doc_from(&xml);
        doc.check_invariants().unwrap();
        let serialized = serialize_document(&doc);
        // serialization is a fixpoint: shredding it again yields the same text
        let doc2 = doc_from(&serialized);
        prop_assert_eq!(serialize_document(&doc2), serialized);
        prop_assert_eq!(doc2.len(), doc.len());
    }

    #[test]
    fn pre_size_level_invariants(xml in arb_xml_tree()) {
        let doc = doc_from(&xml);
        // size of the root covers the whole fragment
        prop_assert_eq!(doc.size(0) as usize, doc.len() - 1);
        // post order rank recovery stays within bounds and is unique
        let mut posts: Vec<i64> = (0..doc.len() as u32).map(|p| doc.post(p)).collect();
        posts.sort_unstable();
        posts.dedup();
        prop_assert_eq!(posts.len(), doc.len());
    }

    #[test]
    fn looplifted_matches_iterative_on_all_axes(
        xml in arb_xml_tree(),
        picks in prop::collection::vec((1i64..4, 0usize..64), 1..12),
    ) {
        let doc = doc_from(&xml);
        let n = doc.len() as u32;
        let ctx: Vec<(i64, u32)> = picks
            .into_iter()
            .map(|(it, p)| (it, (p as u32) % n))
            .collect();
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::Following,
            Axis::Preceding,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::SelfAxis,
        ] {
            let mut ll_stats = ScanStats::default();
            let got = looplifted_step(&doc, &ctx, axis, &NodeTest::AnyKind, &mut ll_stats);

            // reference: run the iterative staircase join once per iteration
            let mut want: Vec<(i64, u32)> = Vec::new();
            let mut iters: Vec<i64> = ctx.iter().map(|&(i, _)| i).collect();
            iters.sort_unstable();
            iters.dedup();
            for it in iters {
                let c: Vec<u32> = ctx.iter().filter(|&&(i, _)| i == it).map(|&(_, p)| p).collect();
                let mut st = ScanStats::default();
                for p in staircase_step(&doc, &c, axis, &NodeTest::AnyKind, &mut st) {
                    want.push((it, p));
                }
            }
            want.sort_unstable_by_key(|&(it, p)| (p, it));
            prop_assert_eq!(&got, &want, "axis {} on {}", axis, serialize_document(&doc));
        }
    }

    #[test]
    fn child_step_scan_bound(xml in arb_xml_tree(), picks in prop::collection::vec((1i64..4, 0usize..64), 1..10)) {
        let doc = doc_from(&xml);
        let n = doc.len() as u32;
        let mut ctx: Vec<(i64, u32)> = picks.into_iter().map(|(it, p)| (it, (p as u32) % n)).collect();
        ctx.sort_unstable();
        ctx.dedup();
        let mut stats = ScanStats::default();
        let result = looplifted_step(&doc, &ctx, Axis::Child, &NodeTest::AnyKind, &mut stats);
        // Section 3: never touch more than |result| + |context| nodes
        prop_assert!(
            stats.nodes_scanned <= (result.len() + ctx.len()) as u64,
            "scanned {} > result {} + context {}",
            stats.nodes_scanned,
            result.len(),
            ctx.len()
        );
        prop_assert_eq!(stats.passes, 1);
    }

    #[test]
    fn update_schemes_agree(
        xml in arb_xml_tree(),
        ops in prop::collection::vec((0usize..32, any::<bool>()), 1..10),
    ) {
        let doc = doc_from(&xml);
        let mut paged = PagedDocument::from_document(&doc, 8, 75);
        let mut naive = NaiveDocument::from_document(&doc);
        let frag = fragment_from_xml("<ins><x/>payload</ins>");
        for (target, is_insert) in ops {
            let len = paged.len() as u32;
            let pre = (target as u32) % len;
            if is_insert {
                // only elements may receive children
                if paged.kind(pre) == NodeKind::Element {
                    paged.insert_last_child(pre, &frag);
                    naive.insert_last_child(pre, &frag);
                }
            } else if pre != 0 && paged.len() > 1 {
                // never delete the root
                paged.delete_subtree(pre.max(1));
                naive.delete_subtree(pre.max(1));
            }
        }
        let a = serialize_document(&paged.to_document());
        let b = serialize_document(&naive.to_document());
        prop_assert_eq!(a, b);
        paged.to_document().check_invariants().unwrap();
    }

    #[test]
    fn dictionary_encode_decode_identity(
        rows in prop::collection::vec("[a-e0-9]{0,4}", 1..40),
    ) {
        let col = Column::dict_from_strings(rows.iter().map(|s| s.as_str()));
        prop_assert_eq!(col.len(), rows.len());
        let decoded: Vec<String> = col.iter_items().map(|i| i.string_value()).collect();
        prop_assert_eq!(&decoded, &rows, "encode→decode is the identity");
        // decode() produces an equivalent plain string column
        let plain = col.decode();
        let via_decode: Vec<String> = plain.iter_items().map(|i| i.string_value()).collect();
        prop_assert_eq!(&via_decode, &rows);
    }

    #[test]
    fn dictionary_sortedness_invariant(
        rows in prop::collection::vec("[a-e0-9]{0,4}", 1..40),
    ) {
        let (_, dict) = Dictionary::encode(rows.iter().map(|s| s.as_str()));
        // code order = string order, in both directions, for every code pair
        for a in 0..dict.len() as u32 {
            for b in 0..dict.len() as u32 {
                prop_assert_eq!(
                    a.cmp(&b),
                    dict.str_of(a).as_ref().cmp(dict.str_of(b).as_ref()),
                    "codes {} and {} disagree with their strings",
                    a,
                    b
                );
            }
        }
        // every row resolves back to its own code
        for s in &rows {
            let c = dict.code_of(s).expect("encoded string is in the dictionary");
            prop_assert_eq!(dict.str_of(c).as_ref(), s.as_str());
        }
    }

    #[test]
    fn dictionary_merge_dedups(
        left in prop::collection::vec("[a-c]{0,3}", 1..20),
        right in prop::collection::vec("[b-e]{0,3}", 1..20),
    ) {
        let (_, a) = Dictionary::encode(left.iter().map(|s| s.as_str()));
        let (_, b) = Dictionary::encode(right.iter().map(|s| s.as_str()));
        let (merged, ra, rb) = Dictionary::merge(&a, &b);
        // merged dictionary is exactly the sorted, deduplicated union
        let mut want: Vec<&str> = left.iter().chain(&right).map(|s| s.as_str()).collect();
        want.sort_unstable();
        want.dedup();
        let got: Vec<&str> = merged.iter().map(|s| s.as_ref()).collect();
        prop_assert_eq!(got, want);
        // the remaps preserve every string of both inputs
        for (old, s) in a.iter().enumerate() {
            prop_assert_eq!(merged.str_of(ra[old]), s);
        }
        for (old, s) in b.iter().enumerate() {
            prop_assert_eq!(merged.str_of(rb[old]), s);
        }
    }

    #[test]
    fn inferred_plan_properties_hold_at_runtime(
        xml in arb_xml_tree(),
        name in prop::sample::select(vec!["a", "b", "item", "person", "leaf", "x"]),
        k in 1i64..4,
    ) {
        // a query mix exercising the analyser's main claims: document order
        // and duplicate-freeness of steps, attribute dictionaries, positional
        // cardinality, distinct elimination and join recognition
        let queries = [
            format!("count(doc(\"t.xml\")//{name})"),
            format!("doc(\"t.xml\")//{name}[@attr = \"a\"]"),
            format!("for $v in doc(\"t.xml\")//{name} return $v/@attr"),
            "distinct-values(doc(\"t.xml\")//node/@attr)".to_string(),
            format!("doc(\"t.xml\")//{name}[{k}]"),
            format!(
                "for $v in doc(\"t.xml\")//{name} order by $v/@attr \
                 return <r>{{$v/text()}}</r>"
            ),
            "for $l in doc(\"t.xml\")//leaf for $n in doc(\"t.xml\")//node \
             where $n/@attr = $l/text() return $n"
                .to_string(),
        ];
        let db = std::sync::Arc::new(Database::new());
        db.load_document("t.xml", &xml).unwrap();
        let mut plain = db.session();
        let mut checked = db.session_with_config(ExecConfig {
            validate_plans: true,
            ..ExecConfig::default()
        });
        for q in &queries {
            let a = plain.query(q).unwrap().serialize().to_string();
            // the checked session asserts every inferred property against
            // every intermediate table; a violation fails the query
            let b = checked.query(q).unwrap().serialize().to_string();
            prop_assert_eq!(a, b, "validated result diverges for {}", q);
        }
    }

    #[test]
    fn inferred_properties_hold_for_update_scripts(
        xml in arb_xml_tree(),
        v in "[a-e]{1,4}",
        second in any::<bool>(),
    ) {
        let script = if second {
            format!(
                "insert nodes <n attr=\"{v}\"/> as last into doc(\"t.xml\")/*[1], \
                 delete nodes doc(\"t.xml\")//empty"
            )
        } else {
            format!("insert nodes <leaf>{v}</leaf> as first into doc(\"t.xml\")/*[1]")
        };
        let plain_db = std::sync::Arc::new(Database::new());
        plain_db.load_document("t.xml", &xml).unwrap();
        let checked_db = std::sync::Arc::new(Database::new());
        checked_db.load_document("t.xml", &xml).unwrap();
        plain_db.session().execute_update(&script).unwrap();
        checked_db
            .session_with_config(ExecConfig {
                validate_plans: true,
                ..ExecConfig::default()
            })
            .execute_update(&script)
            .unwrap();
        let q = "count(doc(\"t.xml\")//*)";
        prop_assert_eq!(
            plain_db.session().query(q).unwrap().serialize().to_string(),
            checked_db.session().query(q).unwrap().serialize().to_string()
        );
    }

    #[test]
    fn engine_agrees_with_naive_on_generated_counts(xml in arb_xml_tree(), name in prop::sample::select(vec!["a", "b", "item", "person", "leaf", "x"])) {
        let query = format!("count(doc(\"t.xml\")//{name})");
        let db = std::sync::Arc::new(Database::new());
        db.load_document("t.xml", &xml).unwrap();
        let relational = db.session().query(&query).unwrap().serialize().to_string();

        let mut store = mxq::xmldb::DocStore::new();
        store.load_xml("t.xml", &xml).unwrap();
        let mut naive = mxq::xmark::naive::NaiveInterpreter::new(&mut store);
        let items = naive.run(&query).unwrap();
        let reference = naive.serialize(&items);
        prop_assert_eq!(relational, reference);
    }
}
