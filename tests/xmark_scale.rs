//! Scale validation (ROADMAP "XMark scale factors", ≥ 0.1): generate an
//! XMark document at scale factor 0.1 (≈4 MB of XML with this generator's
//! laptop-scale element mix), run representative
//! queries (Q1 value lookup, Q8 join, Q15 deep path) against the paged
//! store, apply a mixed update script, and cross-check every paged-scan
//! result against a **full reshred** of the serialized store — the
//! from-scratch oracle for the incremental page/column maintenance.
//!
//! Ignored by default (the run takes tens of seconds in debug builds):
//!
//! ```sh
//! cargo test --release --test xmark_scale -- --ignored
//! ```
//!
//! `MXQ_SCALE` overrides the scale factor (e.g. `MXQ_SCALE=0.02` for a
//! quicker CI-sized run).

use std::sync::Arc;

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::queries::query_text;
use mxq::xmldb::serialize_document;
use mxq::xquery::Database;

fn scale() -> f64 {
    match std::env::var("MXQ_SCALE") {
        Ok(raw) if !raw.trim().is_empty() => raw
            .trim()
            .parse()
            .expect("MXQ_SCALE must be a positive number"),
        _ => 0.1,
    }
}

/// The mixed update script: structural inserts and deletes, value and
/// subtree replacement, renames — each touching a different region of the
/// document.
fn update_script() -> Vec<String> {
    let mut script = Vec::new();
    for i in 0..10 {
        script.push(format!(
            "insert nodes <bidder><date>2006-07-{:02}</date><increase>{}.50</increase></bidder> \
             as last into doc(\"auction.xml\")/site/open_auctions/open_auction[{}]",
            1 + i,
            1 + i % 9,
            1 + i * 3
        ));
    }
    script.push(
        "delete nodes doc(\"auction.xml\")/site/open_auctions/open_auction[2]/bidder[1]".into(),
    );
    script.push(
        "replace value of node doc(\"auction.xml\")/site/open_auctions/open_auction[3]/current \
         with \"999.99\""
            .into(),
    );
    script.push(
        "replace node doc(\"auction.xml\")/site/open_auctions/open_auction[4]/annotation/happiness \
         with <happiness>10</happiness>"
            .into(),
    );
    script.push(
        "rename node doc(\"auction.xml\")/site/open_auctions/open_auction[5]/type as \"kind\""
            .into(),
    );
    script.push(
        "insert nodes <watch open_auction=\"open_auction0\"/> as first into \
         doc(\"auction.xml\")/site/people/person[1]/watches"
            .into(),
    );
    script
}

#[test]
#[ignore = "scale >= 0.1 run; enable with -- --ignored (MXQ_SCALE overrides the factor)"]
fn xmark_scale_01_queries_and_updates_match_full_reshred() {
    let factor = scale();
    let xml = generate_xml(&GenParams::with_factor(factor));
    assert!(
        factor < 0.1 || xml.len() > 2_000_000,
        "sf {factor} generated only {} bytes",
        xml.len()
    );

    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &xml).unwrap();
    let mut session = db.session();

    let queries = [query_text(1), query_text(8), query_text(15)];

    // -- phase 1: fresh-load paged scans vs. a reshred of the same text ---
    let fresh: Vec<String> = queries
        .iter()
        .map(|q| session.query(q).unwrap().serialize().to_string())
        .collect();
    {
        let oracle = Arc::new(Database::new());
        oracle.load_document("auction.xml", &xml).unwrap();
        let mut os = oracle.session();
        for (q, want) in queries.iter().zip(&fresh) {
            assert_eq!(&os.query(q).unwrap().serialize().to_string(), want);
        }
    }

    // -- phase 2: mixed update script, then cross-check again -------------
    let mut primitives = 0usize;
    for stmt in update_script() {
        primitives += session.execute_update(&stmt).unwrap().primitives;
    }
    assert!(
        primitives >= 14,
        "script applied only {primitives} primitives"
    );

    let updated: Vec<String> = queries
        .iter()
        .map(|q| session.query(q).unwrap().serialize().to_string())
        .collect();

    // serialize the updated paged store (rendered from pages on demand) and
    // reshred it into a fresh database: the full-rebuild oracle
    let text = {
        let store = db.store();
        let frag = store.lookup("auction.xml").unwrap();
        serialize_document(&store.container(frag))
    };
    let oracle = Arc::new(Database::new());
    oracle.load_document("auction.xml", &text).unwrap();
    let mut os = oracle.session();
    for (q, want) in queries.iter().zip(&updated) {
        assert_eq!(
            &os.query(q).unwrap().serialize().to_string(),
            want,
            "paged-scan result diverges from full reshred for {q}"
        );
    }

    // updates must be visible (Q1 is auction-independent; bidder counts move)
    let bidders: i64 = session
        .query("count(doc(\"auction.xml\")/site/open_auctions/open_auction/bidder)")
        .unwrap()
        .serialize()
        .parse()
        .unwrap();
    let oracle_bidders: i64 = os
        .query("count(doc(\"auction.xml\")/site/open_auctions/open_auction/bidder)")
        .unwrap()
        .serialize()
        .parse()
        .unwrap();
    assert_eq!(bidders, oracle_bidders);
}

/// The same scale run against the **on-disk store**: load + update a
/// durable database, checkpoint it, crash-recover (drop without another
/// checkpoint, so the WAL tail replays), and compare every query result
/// with the in-memory run.  Prints the cold (checkpoint-image decode) vs.
/// warm (XML shred) open times recorded in BASELINES.md.
#[test]
#[ignore = "scale >= 0.1 run; enable with -- --ignored (MXQ_SCALE overrides the factor)"]
fn xmark_scale_01_on_disk_store_cold_vs_warm() {
    use std::time::Instant;

    let factor = scale();
    let xml = generate_xml(&GenParams::with_factor(factor));
    let dir = std::env::temp_dir().join(format!("mxq-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let queries = [query_text(1), query_text(8), query_text(15)];

    // in-memory oracle: load, update, query
    let mem = Arc::new(Database::new());
    let warm_load = {
        let started = Instant::now();
        mem.load_document("auction.xml", &xml).unwrap();
        started.elapsed().as_secs_f64()
    };
    let mut ms = mem.session();
    for stmt in update_script() {
        ms.execute_update(&stmt).unwrap();
    }
    let want: Vec<String> = queries
        .iter()
        .map(|q| ms.query(q).unwrap().serialize().to_string())
        .collect();

    // durable run: checkpoint after the load, updates stay in the WAL
    {
        let db = Arc::new(Database::open(&dir).unwrap());
        db.load_document("auction.xml", &xml).unwrap();
        db.checkpoint().unwrap();
        let mut s = db.session();
        for stmt in update_script() {
            s.execute_update(&stmt).unwrap();
        }
    }

    // cold start: decode the page images + replay the update tail
    let started = Instant::now();
    let db = Database::open(&dir).unwrap();
    let cold_open = started.elapsed().as_secs_f64();
    let replays = db.stats().recovery_replays;
    assert_eq!(replays, update_script().len() as u64);

    let db = Arc::new(db);
    let mut s = db.session();
    for (q, want) in queries.iter().zip(&want) {
        assert_eq!(
            &s.query(q).unwrap().serialize().to_string(),
            want,
            "on-disk store diverges from the in-memory run for {q}"
        );
    }
    println!(
        "xmark_scale sf {factor}: cold open (images + {replays} replays) {cold_open:.3}s \
         vs warm xml shred {warm_load:.3}s"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
