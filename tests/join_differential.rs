//! Differential test harness for the equi-join rewrite: the
//! radix-partitioned hash join (`radix_hash_join`, the production join of
//! the kernel) is run against the original single-table hash join
//! (`hash_join_items`, kept as the reference implementation) over generated
//! adversarial inputs, asserting **identical pair sets in identical order**
//! for every configuration:
//!
//! * integer key columns (dense and colliding domains);
//! * polymorphic item columns mixing integers, doubles (including NaN bit
//!   patterns, signed zeros and infinities), numeric strings (which must
//!   join their numeric equals under XQuery general-comparison
//!   normalisation) and plain strings;
//! * dictionary-encoded columns sharing one dictionary instance (the
//!   code-to-code fast path), sharing a dictionary that contains numeric
//!   strings (which must *disable* the code fast path), and encoded against
//!   two separate dictionaries;
//! * a dictionary-encoded column joined against a plain string column.
//!
//! Both joins emit pairs ordered by `(left, right)` row index, so the
//! assertions compare exact outputs, which subsumes pair-set equality.

use proptest::prelude::*;

use mxq::engine::join::{hash_join_items, radix_hash_join};
use mxq::engine::{Column, Dictionary, Item};

/// Assert the radix join and the reference join produce the same pairs.
fn assert_joins_agree(left: &Column, right: &Column, what: &str) {
    let (rl, rr) = radix_hash_join(left, right);
    let (hl, hr) = hash_join_items(left, right);
    // exact equality (both joins emit in (left, right) order); sorting the
    // zipped pairs first would only mask an ordering regression
    assert_eq!(rl, hl, "{what}: left indices differ");
    assert_eq!(rr, hr, "{what}: right indices differ");
    // also check both directions: swapping sides must swap the pair set
    let (sl, sr) = radix_hash_join(right, left);
    let mut forward: Vec<(usize, usize)> = rl.into_iter().zip(rr).collect();
    let mut swapped: Vec<(usize, usize)> = sr.into_iter().zip(sl).collect();
    forward.sort_unstable();
    swapped.sort_unstable();
    assert_eq!(forward, swapped, "{what}: join is not symmetric");
}

/// Strategy for one polymorphic item drawn from a deliberately small, nasty
/// domain: colliding integers, NaN-bit doubles, signed zeros, numeric
/// strings that normalise onto the same numeric keys, and plain strings.
fn arb_item() -> impl Strategy<Value = Item> {
    prop_oneof![
        (0i64..6).prop_map(Item::Int),
        prop::sample::select(vec![
            Item::Dbl(0.0),
            Item::Dbl(-0.0),
            Item::Dbl(2.5),
            Item::Dbl(f64::NAN),
            Item::Dbl(f64::INFINITY),
            Item::Dbl(f64::NEG_INFINITY),
        ]),
        prop::sample::select(vec![
            Item::str("0"),
            Item::str("2.5"),
            Item::str(" 3 "),
            Item::str("10"),
        ]),
        "[a-c]{1,2}".prop_map(Item::str),
        any::<bool>().prop_map(Item::Bool),
    ]
}

/// Non-numeric vocabulary (tag-name shaped): the shared-dictionary join must
/// take the code-to-code path.
const TAGS: [&str; 6] = [
    "item",
    "person",
    "open_auction",
    "name",
    "keyword",
    "bidder",
];

/// Vocabulary containing numeric strings: the code fast path must yield to
/// the normalising path ("10" joins integer 10, "2.5" joins double 2.5).
const MIXED: [&str; 6] = ["item", "10", "2.5", "person", " 3 ", "name"];

fn dict_column_over(vocab: &[&str], picks: Vec<usize>) -> (Vec<u32>, std::sync::Arc<Dictionary>) {
    let dict = Dictionary::new(vocab.iter().copied());
    let codes = picks.into_iter().map(|p| (p % dict.len()) as u32).collect();
    (codes, dict)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int_columns_agree(
        left in prop::collection::vec(0i64..8, 0..40),
        right in prop::collection::vec(0i64..8, 0..40),
    ) {
        assert_joins_agree(&Column::Int(left), &Column::Int(right), "int columns");
    }

    #[test]
    fn mixed_item_columns_agree(
        left in prop::collection::vec(arb_item(), 0..40),
        right in prop::collection::vec(arb_item(), 0..40),
    ) {
        assert_joins_agree(
            &Column::Item(left),
            &Column::Item(right),
            "mixed item columns",
        );
    }

    #[test]
    fn shared_dictionary_columns_agree(
        lp in prop::collection::vec(0usize..64, 0..40),
        rp in prop::collection::vec(0usize..64, 0..40),
    ) {
        // both sides encoded against the SAME dictionary instance — this is
        // the code-to-code fast path of the radix join
        let (lcodes, dict) = dict_column_over(&TAGS, lp);
        let rcodes: Vec<u32> = rp.into_iter().map(|p| (p % dict.len()) as u32).collect();
        let left = Column::Dict { codes: lcodes, dict: dict.clone() };
        let right = Column::Dict { codes: rcodes, dict };
        assert_joins_agree(&left, &right, "shared dictionary");
    }

    #[test]
    fn shared_numeric_dictionary_columns_agree(
        lp in prop::collection::vec(0usize..64, 0..40),
        rp in prop::collection::vec(0usize..64, 0..40),
    ) {
        // the shared dictionary contains numeric strings, so the join must
        // fall back to normalised keys (code equality ≠ join equality here)
        let (lcodes, dict) = dict_column_over(&MIXED, lp);
        let rcodes: Vec<u32> = rp.into_iter().map(|p| (p % dict.len()) as u32).collect();
        let left = Column::Dict { codes: lcodes, dict: dict.clone() };
        let right = Column::Dict { codes: rcodes, dict };
        assert_joins_agree(&left, &right, "shared numeric dictionary");
    }

    #[test]
    fn separate_dictionary_columns_agree(
        lp in prop::collection::vec(0usize..64, 0..40),
        rp in prop::collection::vec(0usize..64, 0..40),
    ) {
        // overlapping vocabularies, but distinct dictionary instances: the
        // radix join must not assume code compatibility
        let (lcodes, ldict) = dict_column_over(&TAGS, lp);
        let (rcodes, rdict) = dict_column_over(&MIXED, rp);
        let left = Column::Dict { codes: lcodes, dict: ldict };
        let right = Column::Dict { codes: rcodes, dict: rdict };
        assert_joins_agree(&left, &right, "separate dictionaries");
    }

    #[test]
    fn dict_vs_plain_string_columns_agree(
        lp in prop::collection::vec(0usize..64, 0..40),
        right in prop::collection::vec(arb_item(), 0..40),
    ) {
        let (codes, dict) = dict_column_over(&MIXED, lp);
        let left = Column::Dict { codes, dict };
        assert_joins_agree(&left, &Column::Item(right), "dict vs item column");
    }
}

proptest! {
    // fewer cases, bigger columns: the build side crosses the adaptive
    // partitioning threshold, so the genuinely multi-partition code path is
    // under differential test too (not just the single-table degenerate)
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn large_columns_exercise_partitioning(
        left in prop::collection::vec(arb_item(), 600..1200),
        right in prop::collection::vec(arb_item(), 600..1200),
    ) {
        assert_joins_agree(
            &Column::Item(left),
            &Column::Item(right),
            "large mixed columns",
        );
    }
}

#[test]
fn numeric_string_normalisation_crosses_representations() {
    // pin the exact semantics the differential harness relies on: a
    // dictionary "10" joins Int(10) and Dbl(10.0), and NaN joins NaN of the
    // same bit pattern only
    let left = Column::dict_from_strings(["10", "2.5", "abc"]);
    let right = Column::from_items(vec![
        Item::Int(10),
        Item::Dbl(2.5),
        Item::str("abc"),
        Item::Dbl(f64::NAN),
    ]);
    let (l, r) = radix_hash_join(&left, &right);
    assert_eq!(l, vec![0, 1, 2]);
    assert_eq!(r, vec![0, 1, 2]);

    let nan = Column::from_items(vec![Item::Dbl(f64::NAN)]);
    let (l, _) = radix_hash_join(&nan, &nan);
    assert_eq!(l.len(), 1, "identical NaN bit patterns join");
}

#[test]
fn empty_inputs_join_to_nothing() {
    let empty = Column::empty_item();
    let nonempty = Column::Int(vec![1, 2, 3]);
    for (a, b) in [(&empty, &nonempty), (&nonempty, &empty), (&empty, &empty)] {
        let (l, r) = radix_hash_join(a, b);
        assert!(l.is_empty() && r.is_empty());
    }
}
