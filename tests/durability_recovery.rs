//! Crash-recovery tests for the durability subsystem.
//!
//! Every test drives a durable [`Database`] in a throwaway directory and
//! cross-checks the recovered state against an **in-memory oracle**: a
//! plain `Database::new()` fed the same statements.  Agreement is asserted
//! the way `update_differential.rs` does it — serialized text, reshred
//! fixpoint, pre|size|level invariants and the incremental column image —
//! so recovery is held to the same bar as the live update path.
//!
//! The kill-point suite simulates a crash at *every byte* of the log tail:
//! it truncates (or corrupts) a copy of the WAL at each offset, reopens,
//! and asserts the store lands exactly on the state of the last complete
//! record before the cut.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mxq::wal::{read_records, SyncPolicy, RECORD_HEADER_LEN};
use mxq::xmldb::{serialize_document, shred, DocumentColumns, NodeRead, ShredOptions};
use mxq::xquery::{Database, DurabilityOptions, Error};

// ---------------------------------------------------------------------------
// harness
// ---------------------------------------------------------------------------

/// A self-cleaning scratch directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("mxq-dur-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const DOC: &str = "<site><people><person id=\"p0\"><name>Ann</name><age>27</age></person>\
                   <person id=\"p1\"><name>Bob</name></person></people>\
                   <items><item id=\"i0\"><price>12</price></item></items></site>";

/// A deterministic mixed update script exercising every primitive family.
fn script() -> Vec<String> {
    vec![
        "insert nodes <person id=\"p2\"><name>Cay</name></person> as last into \
         doc(\"d.xml\")/site/people"
            .into(),
        "insert nodes <item id=\"i1\"><price>3</price></item> as first into \
         doc(\"d.xml\")/site/items"
            .into(),
        "replace value of node doc(\"d.xml\")/site/people/person[1]/age with \"28\"".into(),
        "rename node doc(\"d.xml\")/site/items/item[2] as \"lot\"".into(),
        "replace node doc(\"d.xml\")/site/people/person[2]/name with <name>Robert</name>".into(),
        "delete nodes doc(\"d.xml\")/site/items/lot/price".into(),
        "replace value of node doc(\"d.xml\")/site/people/person[3]/@id with \"p2x\"".into(),
    ]
}

/// Page-image files (`doc-*.mxq`) currently in the directory, sorted.
fn image_files(dir: &Path) -> Vec<String> {
    let mut v: Vec<String> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("doc-") && n.ends_with(".mxq"))
        .collect();
    v.sort();
    v
}

/// Serialize the named document straight from the store.
fn doc_text(db: &Database, name: &str) -> String {
    let store = db.store();
    let frag = store.lookup(name).expect("document is loaded");
    serialize_document(&store.container(frag))
}

/// The in-memory oracle: a fresh database fed `DOC` plus the first
/// `applied` statements of the script.
fn oracle(applied: usize) -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.load_document("d.xml", DOC).unwrap();
    let mut s = db.session();
    for stmt in script().iter().take(applied) {
        s.execute_update(stmt).unwrap();
    }
    db
}

/// Assert a recovered database agrees with the oracle the same way the
/// update differential suite checks the live path: identical serialization,
/// reshred fixpoint, structural invariants, identical column image.
fn assert_matches_oracle(recovered: &Database, oracle: &Database) {
    let got = doc_text(recovered, "d.xml");
    let want = doc_text(oracle, "d.xml");
    assert_eq!(got, want, "recovered serialization diverged from oracle");
    assert_eq!(
        recovered.generation(),
        oracle.generation(),
        "recovered generation diverged from oracle"
    );

    let opts = ShredOptions {
        document_node: true,
        ..ShredOptions::default()
    };
    let reshred = shred("check.xml", &got, &opts).unwrap();
    reshred.check_invariants().unwrap();
    assert_eq!(serialize_document(&reshred), got, "reshred fixpoint");
    {
        let store = recovered.store();
        let frag = store.lookup("d.xml").unwrap();
        assert_eq!(store.container(frag).len(), reshred.len(), "node count");
    }
    recovered
        .document_columns("d.xml")
        .unwrap()
        .same_content(&DocumentColumns::new(&reshred))
        .expect("recovered columns diverged from a reshred of the store");
    recovered
        .document_columns("d.xml")
        .unwrap()
        .same_content(&oracle.document_columns("d.xml").unwrap())
        .expect("recovered columns diverged from the oracle's");
}

/// Build a durable database in `dir`, apply the first `applied` script
/// statements, and drop it (no checkpoint unless the caller takes one).
fn build_durable(dir: &Path, options: DurabilityOptions, applied: usize) -> Arc<Database> {
    let db = Arc::new(Database::open_with(dir, options).unwrap());
    db.load_document("d.xml", DOC).unwrap();
    let mut s = db.session();
    for stmt in script().iter().take(applied) {
        s.execute_update(stmt).unwrap();
    }
    db
}

// ---------------------------------------------------------------------------
// plain recovery
// ---------------------------------------------------------------------------

#[test]
fn wal_only_recovery_replays_everything() {
    let dir = TempDir::new("wal-only");
    let n = script().len();
    {
        let db = build_durable(dir.path(), DurabilityOptions::default(), n);
        let stats = db.stats();
        assert!(stats.wal_bytes_written > 0, "updates must hit the log");
        // SyncPolicy::Always: one fsync per logged operation at minimum
        assert!(stats.wal_fsyncs > (n as u64));
        assert_eq!(stats.checkpoints, 0);
    }
    let db = Database::open(dir.path()).unwrap();
    // the load plus every update came back from the log
    assert_eq!(db.stats().recovery_replays, (n as u64) + 1);
    assert_matches_oracle(&db, &oracle(n));
}

#[test]
fn checkpoint_then_wal_tail_recovers() {
    let dir = TempDir::new("ckpt-tail");
    let n = script().len();
    let mid = 3;
    {
        let db = Arc::new(Database::open(dir.path()).unwrap());
        db.load_document("d.xml", DOC).unwrap();
        let mut s = db.session();
        for stmt in script().iter().take(mid) {
            s.execute_update(stmt).unwrap();
        }
        db.checkpoint().unwrap();
        assert_eq!(db.stats().checkpoints, 1);
        for stmt in script().iter().skip(mid) {
            s.execute_update(stmt).unwrap();
        }
    }
    let db = Database::open(dir.path()).unwrap();
    // only the post-checkpoint updates replay
    assert_eq!(db.stats().recovery_replays, (n - mid) as u64);
    assert_matches_oracle(&db, &oracle(n));
}

#[test]
fn checkpoint_at_head_recovers_without_replay() {
    let dir = TempDir::new("ckpt-clean");
    {
        let db = build_durable(dir.path(), DurabilityOptions::default(), script().len());
        db.checkpoint().unwrap();
    }
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(db.stats().recovery_replays, 0, "checkpoint covered the log");
    assert_matches_oracle(&db, &oracle(script().len()));
}

#[test]
fn double_reopen_is_stable() {
    let dir = TempDir::new("double");
    drop(build_durable(dir.path(), DurabilityOptions::default(), 4));
    let first = {
        let db = Database::open(dir.path()).unwrap();
        db.checkpoint().unwrap();
        doc_text(&db, "d.xml")
    };
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(doc_text(&db, "d.xml"), first);
    assert_matches_oracle(&db, &oracle(4));
}

#[test]
fn recovered_database_accepts_further_updates() {
    let dir = TempDir::new("continue");
    drop(build_durable(dir.path(), DurabilityOptions::default(), 2));
    {
        let db = Arc::new(Database::open(dir.path()).unwrap());
        let mut s = db.session();
        for stmt in script().iter().skip(2) {
            s.execute_update(stmt).unwrap();
        }
    }
    let db = Database::open(dir.path()).unwrap();
    assert_matches_oracle(&db, &oracle(script().len()));
}

// ---------------------------------------------------------------------------
// kill points: crash at every byte of the log tail
// ---------------------------------------------------------------------------

/// Record boundaries (cumulative end offsets) of a WAL file.
fn record_ends(wal: &[u8]) -> Vec<u64> {
    let mut ends = Vec::new();
    let mut pos = 0u64;
    while (pos as usize) + (RECORD_HEADER_LEN as usize) <= wal.len() {
        let len = u32::from_le_bytes(wal[pos as usize..pos as usize + 4].try_into().unwrap());
        pos += RECORD_HEADER_LEN + len as u64;
        assert!(pos as usize <= wal.len(), "log built by the test is whole");
        ends.push(pos);
    }
    ends
}

#[test]
fn kill_points_land_on_last_complete_generation() {
    let outer = TempDir::new("killpoints-src");
    // keep the log small: the load plus three updates, so the byte loop
    // stays in the thousands
    drop(build_durable(outer.path(), DurabilityOptions::default(), 3));
    let wal = fs::read(outer.path().join("wal.log")).unwrap();
    let ends = record_ends(&wal);
    assert_eq!(ends.len(), 4, "load + three updates");
    assert_eq!(*ends.last().unwrap() as usize, wal.len());

    // oracles[k] = expected state with k script statements applied; a cut
    // before the end of the load record leaves an empty store (None)
    let oracles: Vec<Arc<Database>> = (0..=3).map(oracle).collect();

    let scratch = TempDir::new("killpoints-run");
    for cut in 0..=wal.len() {
        let _ = fs::remove_dir_all(scratch.path());
        fs::create_dir_all(scratch.path()).unwrap();
        fs::write(scratch.path().join("wal.log"), &wal[..cut]).unwrap();

        let complete = ends.iter().filter(|&&e| e as usize <= cut).count();
        let db = Database::open(scratch.path())
            .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got {e}"));
        if complete == 0 {
            assert!(
                db.store().lookup("d.xml").is_none(),
                "cut at byte {cut}: load record incomplete, store must be empty"
            );
        } else {
            assert_matches_oracle(&db, &oracles[complete - 1]);
        }
        assert_eq!(db.stats().recovery_replays, complete as u64);

        // the torn tail was truncated away on open: a second open replays
        // the same prefix (idempotent recovery)
        drop(db);
        let again = Database::open(scratch.path()).unwrap();
        assert_eq!(again.stats().recovery_replays, complete as u64);
    }
}

#[test]
fn corrupt_byte_discards_record_and_tail() {
    let outer = TempDir::new("corrupt-src");
    drop(build_durable(outer.path(), DurabilityOptions::default(), 2));
    let wal = fs::read(outer.path().join("wal.log")).unwrap();
    let ends = record_ends(&wal);
    let oracles: Vec<Arc<Database>> = (0..=2).map(oracle).collect();

    let scratch = TempDir::new("corrupt-run");
    // flip one byte inside each record in turn (stride keeps it fast);
    // recovery must stop right before the damaged record
    for (idx, &end) in ends.iter().enumerate() {
        let start = if idx == 0 { 0 } else { ends[idx - 1] };
        for off in (start..end).step_by(7) {
            let mut bad = wal.clone();
            bad[off as usize] ^= 0x40;
            let _ = fs::remove_dir_all(scratch.path());
            fs::create_dir_all(scratch.path()).unwrap();
            fs::write(scratch.path().join("wal.log"), &bad).unwrap();

            let db = Database::open(scratch.path())
                .unwrap_or_else(|e| panic!("corrupt byte {off} must not fail open: {e}"));
            // a flipped length prefix can make the scan see a *longer*
            // (torn) record and stop earlier — never later than idx
            let replays = db.stats().recovery_replays as usize;
            assert!(
                replays <= idx,
                "corrupt byte {off} in record {idx}: replayed {replays}"
            );
            if replays > 0 {
                assert_matches_oracle(&db, &oracles[replays - 1]);
            } else {
                assert!(db.store().lookup("d.xml").is_none());
            }
        }
    }
}

#[test]
fn scan_reports_the_discarded_tail() {
    let dir = TempDir::new("scan");
    drop(build_durable(dir.path(), DurabilityOptions::default(), 1));
    let wal_path = dir.path().join("wal.log");
    let wal = fs::read(&wal_path).unwrap();
    fs::write(&wal_path, &wal[..wal.len() - 3]).unwrap();
    let scan = read_records(&wal_path).unwrap();
    assert!(scan.tail_discarded);
    assert_eq!(scan.records.len(), 1);
}

// ---------------------------------------------------------------------------
// damaged checkpoints are structured errors
// ---------------------------------------------------------------------------

#[test]
fn corrupt_checkpoint_artifacts_fail_open_cleanly() {
    let dir = TempDir::new("badckpt");
    {
        let db = build_durable(dir.path(), DurabilityOptions::default(), 3);
        db.checkpoint().unwrap();
    }

    // corrupt the page image → structured durability error, no panic
    let images = image_files(dir.path());
    let image = dir.path().join(
        images
            .iter()
            .find(|n| n.starts_with("doc-1-"))
            .expect("the checkpoint imaged fragment 1"),
    );
    let good = fs::read(&image).unwrap();
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 1;
    fs::write(&image, &bad).unwrap();
    assert!(matches!(
        Database::open(dir.path()),
        Err(Error::Durability(_))
    ));

    // missing image → structured error
    fs::remove_file(&image).unwrap();
    assert!(matches!(
        Database::open(dir.path()),
        Err(Error::Durability(_))
    ));
    fs::write(&image, &good).unwrap();

    // corrupt the catalog → structured error
    let catalog = dir.path().join("catalog.mxq");
    let cat = fs::read(&catalog).unwrap();
    let mut badcat = cat.clone();
    badcat[6] ^= 1;
    fs::write(&catalog, &badcat).unwrap();
    assert!(matches!(
        Database::open(dir.path()),
        Err(Error::Durability(_))
    ));

    // restored artifacts recover again
    fs::write(&catalog, &cat).unwrap();
    let db = Database::open(dir.path()).unwrap();
    assert_matches_oracle(&db, &oracle(3));
}

// ---------------------------------------------------------------------------
// checkpoint atomicity: immutable images, incremental I/O, debris sweeping
// ---------------------------------------------------------------------------

#[test]
fn crashed_checkpoint_cannot_corrupt_the_previous_one() {
    // The double-apply scenario: a checkpoint commits at generation G, more
    // updates are logged in (G, G'], then a second checkpoint crashes after
    // writing its page images but before committing its catalog.  The
    // surviving catalog must still point at the untouched gen-G images, so
    // replaying the WAL tail lands exactly on the oracle — the newer images
    // are orphans and must be ignored (and swept) by recovery.
    let dir = TempDir::new("crashed-ckpt");
    let n = script().len();
    let mid = 3;
    {
        let db = Arc::new(Database::open(dir.path()).unwrap());
        db.load_document("d.xml", DOC).unwrap();
        let mut s = db.session();
        for stmt in script().iter().take(mid) {
            s.execute_update(stmt).unwrap();
        }
        db.checkpoint().unwrap();
        for stmt in script().iter().skip(mid) {
            s.execute_update(stmt).unwrap();
        }
    }
    let committed = image_files(dir.path());

    // simulate the crashed second checkpoint: run it to completion in a
    // copy of the directory, then graft only its image files — not its
    // catalog, not its truncated WAL — back into the original
    let copy = TempDir::new("crashed-ckpt-copy");
    for f in fs::read_dir(dir.path()).unwrap() {
        let f = f.unwrap();
        fs::copy(f.path(), copy.path().join(f.file_name())).unwrap();
    }
    {
        let db = Database::open(copy.path()).unwrap();
        db.checkpoint().unwrap();
    }
    let mut grafted = 0;
    for name in image_files(copy.path()) {
        if !committed.contains(&name) {
            fs::copy(copy.path().join(&name), dir.path().join(&name)).unwrap();
            grafted += 1;
        }
    }
    assert!(grafted > 0, "the second checkpoint wrote fresh image files");

    let db = Database::open(dir.path()).unwrap();
    assert_eq!(
        db.stats().recovery_replays,
        (n - mid) as u64,
        "the WAL tail replays once, against the gen-G images"
    );
    assert_matches_oracle(&db, &oracle(n));
    assert_eq!(
        image_files(dir.path()),
        committed,
        "orphan images from the crashed checkpoint are swept on open"
    );
}

#[test]
fn checkpoint_rewrites_only_changed_documents() {
    const LOG: &str = "<log><entry n=\"1\"/></log>";
    let dir = TempDir::new("incremental-ckpt");
    let db = Arc::new(Database::open(dir.path()).unwrap());
    db.load_document("d.xml", DOC).unwrap();
    db.load_document("e.xml", LOG).unwrap();
    db.checkpoint().unwrap();
    let first = image_files(dir.path());
    assert_eq!(first.len(), 2);

    // update only d.xml: the next checkpoint must image it afresh while
    // referencing e.xml's existing file unchanged
    db.session().execute_update(&script()[0]).unwrap();
    db.checkpoint().unwrap();
    let second = image_files(dir.path());
    assert_eq!(second.len(), 2);
    let e_image = first.iter().find(|n| n.starts_with("doc-2-")).unwrap();
    assert!(second.contains(e_image), "clean e.xml keeps its image file");
    let d_first = first.iter().find(|n| n.starts_with("doc-1-")).unwrap();
    let d_second = second.iter().find(|n| n.starts_with("doc-1-")).unwrap();
    assert_ne!(d_first, d_second, "dirty d.xml gets a fresh image file");
    assert!(
        !dir.path().join(d_first).exists(),
        "the superseded image is deleted after the catalog commit"
    );

    // a checkpoint with nothing dirty rewrites no image at all (same
    // files, same inodes — write_atomic would have produced fresh inodes)
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        let inos = |names: &[String]| -> Vec<u64> {
            names
                .iter()
                .map(|n| fs::metadata(dir.path().join(n)).unwrap().ino())
                .collect()
        };
        let before = inos(&second);
        db.checkpoint().unwrap();
        assert_eq!(image_files(dir.path()), second);
        assert_eq!(before, inos(&second), "clean images are not rewritten");
    }

    // recovery from the mixed-generation image set agrees with the oracle
    drop(db);
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(db.stats().recovery_replays, 0);
    let twin = Arc::new(Database::new());
    twin.load_document("d.xml", DOC).unwrap();
    twin.load_document("e.xml", LOG).unwrap();
    twin.session().execute_update(&script()[0]).unwrap();
    assert_matches_oracle(&db, &twin);
}

#[test]
fn stale_tmp_files_are_removed_on_open() {
    let dir = TempDir::new("stale-tmp");
    {
        let db = build_durable(dir.path(), DurabilityOptions::default(), 2);
        db.checkpoint().unwrap();
    }
    // a crash inside write_atomic leaves its temp file behind
    fs::write(dir.path().join("catalog.mxq.tmp"), b"half-written").unwrap();
    fs::write(dir.path().join("doc-1-99.mxq.tmp"), b"half-written").unwrap();
    let db = Database::open(dir.path()).unwrap();
    assert_matches_oracle(&db, &oracle(2));
    let leftovers: Vec<String> = fs::read_dir(dir.path())
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "stale temp files swept on open: {leftovers:?}"
    );
}

// ---------------------------------------------------------------------------
// sync policies
// ---------------------------------------------------------------------------

#[test]
fn relaxed_sync_policies_recover_after_clean_drop() {
    for (tag, sync) in [
        ("every", SyncPolicy::EveryN(4)),
        ("never", SyncPolicy::Never),
    ] {
        let dir = TempDir::new(&format!("sync-{tag}"));
        let options = DurabilityOptions {
            sync,
            ..DurabilityOptions::default()
        };
        {
            let db = build_durable(dir.path(), options, script().len());
            if matches!(sync, SyncPolicy::Never) {
                assert_eq!(db.stats().wal_fsyncs, 0, "Never must not fsync appends");
            }
        }
        // a clean drop leaves the appended bytes in the file (they were
        // written, just not necessarily synced) — recovery sees them all
        let db = Database::open(dir.path()).unwrap();
        assert_matches_oracle(&db, &oracle(script().len()));
    }
}

// ---------------------------------------------------------------------------
// failed statements must not log
// ---------------------------------------------------------------------------

#[test]
fn rejected_statements_leave_no_log_records() {
    let dir = TempDir::new("rejected");
    {
        let db = Arc::new(Database::open(dir.path()).unwrap());
        db.load_document("d.xml", DOC).unwrap();
        let mut s = db.session();
        // invalid XML load: rejected before logging
        assert!(db.load_document("bad.xml", "<unclosed>").is_err());
        // update whose target selects nothing valid: collection fails
        assert!(s
            .execute_update("replace node doc(\"d.xml\")/site/nope with <x/>")
            .is_err());
        s.execute_update(&script()[0]).unwrap();
    }
    let db = Database::open(dir.path()).unwrap();
    // exactly two records made it to the log: the good load + one update
    assert_eq!(db.stats().recovery_replays, 2);
    assert_matches_oracle(&db, &oracle(1));
}

// ---------------------------------------------------------------------------
// eviction + fault-in
// ---------------------------------------------------------------------------

#[test]
fn eviction_faults_documents_back_from_disk() {
    let dir = TempDir::new("evict");
    let options = DurabilityOptions {
        memory_budget: Some(1), // evict everything evictable
        ..DurabilityOptions::default()
    };
    let db = Arc::new(Database::open_with(dir.path(), options).unwrap());
    db.load_document("d.xml", DOC).unwrap();
    db.load_document("e.xml", "<log><entry n=\"1\"/><entry n=\"2\"/></log>")
        .unwrap();
    let before = doc_text(&db, "d.xml");
    db.checkpoint().unwrap();
    {
        let store = db.store();
        let d = store.lookup("d.xml").unwrap();
        let e = store.lookup("e.xml").unwrap();
        assert!(!store.is_resident(d), "budget of 1 byte evicts d.xml");
        assert!(!store.is_resident(e), "budget of 1 byte evicts e.xml");
    }
    // queries fault the pages back in transparently
    let mut s = db.session();
    assert_eq!(
        s.query("count(doc(\"e.xml\")/log/entry)")
            .unwrap()
            .serialize(),
        "2"
    );
    assert_eq!(doc_text(&db, "d.xml"), before);
    assert!(db.store().is_resident(db.store().lookup("e.xml").unwrap()));

    // updates work against a faulted-in document and stay durable
    s.execute_update(&script()[0]).unwrap();
    drop(s);
    drop(db);
    let db = Database::open(dir.path()).unwrap();
    // the oracle must mirror the full session, second document included
    let twin = Arc::new(Database::new());
    twin.load_document("d.xml", DOC).unwrap();
    twin.load_document("e.xml", "<log><entry n=\"1\"/><entry n=\"2\"/></log>")
        .unwrap();
    twin.session().execute_update(&script()[0]).unwrap();
    assert_matches_oracle(&db, &twin);
}

#[test]
fn faulted_in_documents_can_be_evicted_again() {
    let dir = TempDir::new("re-evict");
    let options = DurabilityOptions {
        memory_budget: Some(1),
        ..DurabilityOptions::default()
    };
    let db = Arc::new(Database::open_with(dir.path(), options).unwrap());
    db.load_document("d.xml", DOC).unwrap();
    db.checkpoint().unwrap();
    assert!(!db.store().is_resident(1));
    // a read faults the pages back in without dirtying the document…
    let mut s = db.session();
    assert_eq!(
        s.query("count(doc(\"d.xml\")/site/people/person)")
            .unwrap()
            .serialize(),
        "2"
    );
    assert!(db.store().is_resident(1));
    // …so the next checkpoint must be able to drop it again, or the memory
    // budget would stay unenforced forever after one read
    db.checkpoint().unwrap();
    assert!(
        !db.store().is_resident(1),
        "a faulted-in clean document is evicted again"
    );
    // and it still reads correctly after the re-eviction
    assert_eq!(doc_text(&db, "d.xml"), doc_text(&oracle(0), "d.xml"));
}

#[test]
fn eviction_skips_dirty_documents() {
    let dir = TempDir::new("evict-dirty");
    let options = DurabilityOptions {
        memory_budget: Some(1),
        ..DurabilityOptions::default()
    };
    let db = Arc::new(Database::open_with(dir.path(), options).unwrap());
    db.load_document("d.xml", DOC).unwrap();
    db.checkpoint().unwrap();
    assert!(!db.store().is_resident(1));
    // fault back in via an update: the doc is now dirty again…
    let mut s = db.session();
    s.execute_update(&script()[0]).unwrap();
    assert!(db.store().is_resident(1));
    // …and the next checkpoint re-images and re-evicts it
    db.checkpoint().unwrap();
    assert!(!db.store().is_resident(1));
    assert_eq!(doc_text(&db, "d.xml"), doc_text(&oracle(1), "d.xml"));
}

// ---------------------------------------------------------------------------
// stats surface
// ---------------------------------------------------------------------------

#[test]
fn stats_track_durability_work() {
    let dir = TempDir::new("stats");
    let db = build_durable(dir.path(), DurabilityOptions::default(), 2);
    let s1 = db.stats();
    assert!(s1.wal_bytes_written > 0);
    assert!(s1.wal_fsyncs >= 3); // load + 2 updates under Always
    assert_eq!(s1.checkpoints, 0);
    assert_eq!(s1.recovery_replays, 0);
    db.checkpoint().unwrap();
    assert_eq!(db.stats().checkpoints, 1);

    // an in-memory database reports durability zeros
    let mem = Database::new();
    let s2 = mem.stats();
    assert_eq!(s2.wal_bytes_written, 0);
    assert_eq!(s2.wal_fsyncs, 0);
    assert_eq!(s2.checkpoints, 0);
}

// ---------------------------------------------------------------------------
// checkpoints racing live commits
// ---------------------------------------------------------------------------

/// Checkpoints spin concurrently with committing writers, then the
/// database is dropped and reopened.  Every acknowledged commit must
/// survive: a checkpoint captures its dirty set and store snapshot
/// atomically, so a commit publishing around a capture is either in the
/// checkpoint image or keeps its WAL record through rotation — never
/// neither (the lost-commit race this guards against reused a stale
/// pre-commit image while rotation dropped the commit's record).
#[test]
fn checkpoints_racing_commits_lose_nothing_across_recovery() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const WRITERS: usize = 4;
    const COMMITS: usize = 40;

    let tmp = TempDir::new("ckpt-race");
    let opts = DurabilityOptions {
        sync: SyncPolicy::Never, // drop+reopen is the "crash"; skip fsyncs
        memory_budget: None,
        checkpoint_interval: None,
    };
    let db = Arc::new(Database::open_with(tmp.path(), opts).unwrap());
    for w in 0..WRITERS {
        db.load_document(&format!("w{w}.xml"), "<list/>").unwrap();
    }

    let done = Arc::new(AtomicBool::new(false));
    let ckpt = {
        let db = Arc::clone(&db);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut n = 0u32;
            while !done.load(Ordering::Relaxed) {
                db.checkpoint().unwrap();
                n += 1;
            }
            n
        })
    };
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut s = db.session();
                for i in 0..COMMITS {
                    s.execute(&format!(
                        "insert nodes <e n=\"{i}\"/> as last into doc(\"w{w}.xml\")/list"
                    ))
                    .unwrap();
                }
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    assert!(ckpt.join().unwrap() > 0, "checkpointer never ran");
    drop(db);

    let db = Arc::new(Database::open_with(tmp.path(), opts).unwrap());
    // the disjoint-document writers serialize per document, so each
    // recovered document must equal a serial replay of its writer's script
    let serial = Arc::new(Database::new());
    {
        let mut s = serial.session();
        for w in 0..WRITERS {
            serial
                .load_document(&format!("w{w}.xml"), "<list/>")
                .unwrap();
            for i in 0..COMMITS {
                s.execute(&format!(
                    "insert nodes <e n=\"{i}\"/> as last into doc(\"w{w}.xml\")/list"
                ))
                .unwrap();
            }
        }
    }
    let mut s = db.session();
    for w in 0..WRITERS {
        let r = s
            .execute(&format!("count(doc(\"w{w}.xml\")/list/e)"))
            .unwrap();
        assert_eq!(
            r.as_query().unwrap().serialize(),
            COMMITS.to_string(),
            "writer {w} lost acknowledged commits"
        );
        assert_eq!(
            doc_text(&db, &format!("w{w}.xml")),
            doc_text(&serial, &format!("w{w}.xml")),
            "writer {w} diverged from serial replay"
        );
    }
}
