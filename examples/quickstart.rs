//! Quickstart: share a database, open a session, run queries, prepare a
//! parameterized statement, stream a result, inspect the compiled plan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use mxq::xquery::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Arc::new(Database::new());
    db.load_document(
        "library.xml",
        r#"<library>
             <book year="2004"><title>Relational XML</title><price>35</price></book>
             <book year="2006"><title>Loop Lifting</title><price>42</price></book>
             <book year="2006"><title>Staircase Join</title><price>28</price></book>
           </library>"#,
    )?;
    let mut session = db.session();

    // 1. a simple path + predicate query
    let recent = session.query(
        "for $b in doc(\"library.xml\")/library/book where $b/@year >= 2005 \
         return $b/title/text()",
    )?;
    println!("Books from 2005 on : {}", recent.serialize());

    // 2. aggregation
    let avg = session.query("avg(doc(\"library.xml\")/library/book/price/text())")?;
    println!("Average price      : {}", avg.serialize());

    // 3. a prepared statement with an external variable: parsed + compiled
    //    once, executed with different bindings
    let stmt = session.prepare(
        "declare variable $max external; \
         for $b in doc(\"library.xml\")/library/book \
         where $b/price/text() <= $max \
         order by $b/price/text() \
         return $b/title/text()",
    )?;
    for max in [30, 40] {
        let result = stmt.bind("max", max).query()?;
        println!("Books up to {max:>2}     : {}", result.serialize());
    }

    // 4. element construction, streamed item by item instead of one string
    let mut stream = session.execute_streaming(
        "for $b in doc(\"library.xml\")/library/book \
         order by $b/price/text() descending \
         return <entry price=\"{$b/price/text()}\">{$b/title/text()}</entry>",
    )?;
    println!("Report entries:");
    while let Some(item) = stream.next() {
        println!("  {}", stream.serialize_item(&item));
    }

    // 5. the plan cache means re-running a query skips parse + compile
    let _ = session.query("count(doc(\"library.xml\")/library/book)")?;
    let _ = session.query("count(doc(\"library.xml\")/library/book)")?;
    let stats = db.stats();
    println!(
        "\nDatabase counters: {} compiles, {} plan-cache hits ({} cached plans)",
        stats.prepares, stats.plan_cache_hits, stats.plan_cache_len
    );

    // 6. look at the relational plan the compiler produced
    let parsed = mxq::xquery::parse_query(
        "for $b in doc(\"library.xml\")/library/book return $b/title/text()",
    )?;
    let plan = mxq::xquery::Compiler::new(session.config()).compile_query(&parsed)?;
    println!(
        "\nCompiled plan ({} operators):\n{}",
        plan.operator_count(),
        plan.explain()
    );

    Ok(())
}
