//! Quickstart: load an XML document, run a few XQuery queries, inspect the
//! compiled relational plan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mxq::xquery::XQueryEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = XQueryEngine::new();
    engine.load_document(
        "library.xml",
        r#"<library>
             <book year="2004"><title>Relational XML</title><price>35</price></book>
             <book year="2006"><title>Loop Lifting</title><price>42</price></book>
             <book year="2006"><title>Staircase Join</title><price>28</price></book>
           </library>"#,
    )?;

    // 1. a simple path + predicate query
    let recent = engine.execute(
        "for $b in doc(\"library.xml\")/library/book where $b/@year >= 2005 \
         return $b/title/text()",
    )?;
    println!("Books from 2005 on : {}", recent.serialize());

    // 2. aggregation
    let avg = engine.execute("avg(doc(\"library.xml\")/library/book/price/text())")?;
    println!("Average price      : {}", avg.serialize());

    // 3. element construction
    let report = engine.execute(
        "<report total=\"{count(doc(\"library.xml\")/library/book)}\">{ \
           for $b in doc(\"library.xml\")/library/book \
           order by $b/price/text() descending \
           return <entry price=\"{$b/price/text()}\">{$b/title/text()}</entry> \
         }</report>",
    )?;
    println!("Constructed report : {}", report.serialize());

    // 4. look at the relational plan the compiler produced
    let plan =
        engine.compile("for $b in doc(\"library.xml\")/library/book return $b/title/text()")?;
    println!(
        "\nCompiled plan ({} operators):\n{}",
        plan.operator_count(),
        plan.explain()
    );

    Ok(())
}
