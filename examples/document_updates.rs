//! Structural updates (Section 5.2): insert new auctions into a stored
//! document under the page-wise remappable pre-number scheme and compare the
//! update cost with naive renumbering, then query the updated document.
//!
//! ```sh
//! cargo run --release --example document_updates
//! ```

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmldb::update::{fragment_from_xml, NaiveDocument, PagedDocument};
use mxq::xmldb::{serialize_document, shred, ShredOptions};
use std::sync::Arc;

use mxq::xquery::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xml = generate_xml(&GenParams::with_factor(0.002));
    let doc = shred("auction.xml", &xml, &ShredOptions::default())?;
    println!("loaded document with {} nodes", doc.len());

    let new_bid =
        fragment_from_xml("<bidder><date>2006-06-27</date><personref person=\"person0\"/><increase>13.50</increase></bidder>");
    let target = doc.elements_named("open_auction")[0];

    // the paper's scheme: logical pages with free space
    let mut paged = PagedDocument::from_document(&doc, 64, 75);
    // the baseline: shift-everything renumbering
    let mut naive = NaiveDocument::from_document(&doc);

    for _ in 0..25 {
        paged.insert_last_child(target, &new_bid);
        naive.insert_last_child(target, &new_bid);
    }

    println!("\nafter 25 subtree inserts into one auction:");
    println!(
        "  paged scheme : {:6} tuples written, {:4} pages touched, {:3} pages allocated",
        paged.stats.tuples_written, paged.stats.pages_touched, paged.stats.pages_allocated
    );
    println!(
        "  naive scheme : {:6} tuples written (shifted)",
        naive.stats.tuples_written
    );

    // both schemes materialise the same logical document
    let paged_doc = paged.to_document();
    assert_eq!(
        serialize_document(&paged_doc),
        serialize_document(&naive.to_document())
    );
    println!("  both schemes agree on the resulting document ✓");

    // query the updated document
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &serialize_document(&paged_doc))?;
    let mut session = db.session();
    let bids =
        session.query("count(doc(\"auction.xml\")/site/open_auctions/open_auction[1]/bidder)")?;
    println!("\nbidders on the updated auction: {}", bids.serialize());

    // the same write path, driven from XQuery Update Facility text: the
    // statements are parsed, compiled, collected into a pending update list
    // and applied to the engine's own paged representation
    let report = session.execute_update(
        "insert nodes <bidder><date>2006-06-28</date><increase>20.00</increase></bidder> \
         as last into doc(\"auction.xml\")/site/open_auctions/open_auction[1], \
         replace value of node doc(\"auction.xml\")/site/open_auctions/open_auction[1]/current \
         with \"999.99\"",
    )?;
    println!(
        "\nXQUF batch: {} statements → {} primitives, {} tuples written, {} pages touched",
        report.statements,
        report.primitives,
        report.stats.tuples_written,
        report.stats.pages_touched
    );
    let bids =
        session.query("count(doc(\"auction.xml\")/site/open_auctions/open_auction[1]/bidder)")?;
    let current =
        session.query("doc(\"auction.xml\")/site/open_auctions/open_auction[1]/current/text()")?;
    println!(
        "after the batch: {} bidders, current price {}",
        bids.serialize(),
        current.serialize()
    );
    Ok(())
}
