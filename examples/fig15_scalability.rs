//! Regenerates Figure 15: scalability with respect to document size.
//!
//! Runs all 20 XMark queries at three scale factors a decade apart and prints
//! execution times normalised to the middle size (the paper normalises to the
//! 110 MB document).  Linear scaling shows up as a factor ≈10 between
//! adjacent columns; Q11/Q12 grow faster (quadratic join result), the
//! index-assisted queries grow slower.
//!
//! ```sh
//! cargo run --release --example fig15_scalability [base_factor]
//! ```

use std::time::Instant;

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::queries::{query_text, QUERY_IDS};
use std::sync::Arc;

use mxq::xquery::{Database, Session};

fn main() {
    let base: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.001);
    let factors = [base / 10.0, base, base * 10.0];
    println!("Figure 15 — scalability with document size (factors {factors:?})");

    let mut engines: Vec<Session> = factors
        .iter()
        .map(|&f| {
            let xml = generate_xml(&GenParams::with_factor(f));
            let db = Arc::new(Database::new());
            db.load_document("auction.xml", &xml).unwrap();
            db.session()
        })
        .collect();

    println!(
        "{:>4} {:>12} {:>12} {:>12}   (normalised to the middle size = 1.0)",
        "Q", "small", "medium", "large"
    );
    for id in QUERY_IDS {
        let mut times = Vec::new();
        for session in engines.iter_mut() {
            let t = Instant::now();
            session.query(query_text(id)).expect("query");
            times.push(t.elapsed().as_secs_f64());
        }
        let mid = times[1].max(1e-9);
        println!(
            "{id:>4} {:>12.3} {:>12.3} {:>12.3}",
            times[0] / mid,
            times[1] / mid,
            times[2] / mid
        );
    }
    println!("\nlinear scaling ⇒ roughly 0.1 / 1.0 / 10 per row (Q11/Q12 grow faster)");
}
