//! Writer latency: mean wall-clock per `execute_update` (bidder insert
//! into one open auction), measured after warm-up — the acceptance metric
//! for the write path (BASELINES.md "Writer latency").
//!
//! ```sh
//! cargo run --release --example writer_latency            # sf 0.001
//! MXQ_SCALE=0.01 cargo run --release --example writer_latency
//! ```

use std::sync::Arc;
use std::time::Instant;

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xquery::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let factor: f64 = match std::env::var("MXQ_SCALE") {
        Ok(raw) if !raw.trim().is_empty() => raw
            .trim()
            .parse()
            .expect("MXQ_SCALE must be a positive number"),
        _ => 0.001,
    };
    let xml = generate_xml(&GenParams::with_factor(factor));
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &xml)?;
    let mut s = db.session();

    let update = "insert nodes <bidder><date>2006-07-20</date><increase>1.50</increase></bidder> \
                  as last into doc(\"auction.xml\")/site/open_auctions/open_auction[1]";
    const WARMUP: usize = 20;
    const MEASURED: usize = 200;
    for _ in 0..WARMUP {
        s.execute_update(update)?;
    }
    let start = Instant::now();
    for _ in 0..MEASURED {
        s.execute_update(update)?;
    }
    let elapsed = start.elapsed();
    println!(
        "scale factor {factor}: {MEASURED} updates in {:.1} ms -> {:.3} ms/update",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / MEASURED as f64
    );
    Ok(())
}
