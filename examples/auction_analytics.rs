//! Auction analytics: the motivating scenario of the paper's introduction —
//! run analytical XQuery over an auction-site document (the XMark schema),
//! including the value joins that only become tractable through join
//! recognition.
//!
//! ```sh
//! cargo run --release --example auction_analytics
//! ```

use std::time::Instant;

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::queries::query_text;
use std::sync::Arc;

use mxq::xquery::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = GenParams::with_factor(0.005);
    println!(
        "generating auction document (scale factor {}, ~{} people, ~{} auctions) …",
        params.factor,
        params.num_people(),
        params.num_open_auctions() + params.num_closed_auctions()
    );
    let xml = generate_xml(&params);
    println!("document size: {:.1} KB", xml.len() as f64 / 1024.0);

    let db = Arc::new(Database::new());
    let t = Instant::now();
    db.load_document("auction.xml", &xml)?;
    let mut session = db.session();
    println!("shredded in {:?}\n", t.elapsed());

    // ad-hoc analytics on top of the XMark schema
    let analytics = [
        (
            "total items listed",
            "count(doc(\"auction.xml\")/site/regions//item)".to_string(),
        ),
        (
            "average closing price",
            "avg(doc(\"auction.xml\")/site/closed_auctions/closed_auction/price/text())"
                .to_string(),
        ),
        (
            "highest reserve (converted)",
            "declare function local:convert($v) { 2.20371 * $v }; \
             max(for $r in doc(\"auction.xml\")/site/open_auctions/open_auction/reserve \
                 return local:convert($r/text()))"
                .to_string(),
        ),
        ("buyers per person (XMark Q8)", query_text(8).to_string()),
        (
            "income vs. initial bids (XMark Q11)",
            query_text(11).to_string(),
        ),
    ];

    for (label, query) in analytics {
        let t = Instant::now();
        let (result, report) = session.query_with_report(&query)?;
        let preview: String = result.serialize().chars().take(72).collect();
        println!(
            "{label:32} -> {:>6} items, {:>8.2?}  ({} plan ops, {} rows materialised)",
            result.len(),
            t.elapsed(),
            report.plan_operators,
            report.stats.rows_materialized,
        );
        println!("    {preview}…");
    }
    Ok(())
}
