//! Regenerates Table 2 + Figure 16: the survey of published XMark results,
//! SPEC-normalised and expressed relative to MonetDB/XQuery.
//!
//! The published numbers are bundled in `mxq_xmark::survey`; this binary
//! recomputes the normalisation and additionally measures *this
//! reproduction* on a local document so it can be read off the same axis.
//!
//! ```sh
//! cargo run --release --example fig16_survey
//! ```

use std::time::Instant;

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::queries::{query_text, QUERY_IDS};
use mxq::xmark::survey::{relative_to_mxq, spec_normalize, TABLE1, TABLE1_SYSTEMS, TABLE2};
use std::sync::Arc;

use mxq::xquery::Database;

fn main() {
    println!("Table 2 — systems, CPUs and SPECint-CPU2000 normalisation factors\n");
    println!(
        "{:<3} {:<34} {:<16} {:>6} {:>7}",
        "id", "system", "CPU", "SPEC", "factor"
    );
    for row in TABLE2 {
        println!(
            "{:<3} {:<34} {:<16} {:>6} {:>7.2}",
            row.label, row.system, row.cpu, row.spec, row.factor
        );
    }

    println!("\nFigure 16 (11 MB column) — normalised time relative to MonetDB/XQuery");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10}",
        "Q", TABLE1_SYSTEMS[1], TABLE1_SYSTEMS[2], TABLE1_SYSTEMS[3], TABLE1_SYSTEMS[4]
    );
    for row in TABLE1 {
        let mxq = row.mb11[0].unwrap_or(f64::NAN).max(1e-6);
        let rel = |idx: usize| -> String {
            match row.mb11[idx] {
                // the authors' machines are the reference CPU: factor 1.0
                Some(t) => format!("{:.1}", relative_to_mxq(spec_normalize(t, 1.0), mxq)),
                None => "DNF".into(),
            }
        };
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>10}",
            row.query,
            rel(1),
            rel(2),
            rel(3),
            rel(4)
        );
    }

    // our own measurements, for the same relative reading
    let xml = generate_xml(&GenParams::with_factor(0.001));
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &xml).unwrap();
    let mut session = db.session();
    println!("\nThis reproduction (scale factor 0.001), absolute seconds per query:");
    for id in QUERY_IDS {
        let t = Instant::now();
        session.query(query_text(id)).expect("query");
        print!("Q{id}:{:.3}s  ", t.elapsed().as_secs_f64());
        if id % 7 == 0 {
            println!();
        }
    }
    println!();
}
