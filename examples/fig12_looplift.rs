//! Regenerates Figure 12: per-query speedup of the loop-lifted staircase join
//! (and nametest pushdown) over the iterative staircase join.
//!
//! ```sh
//! cargo run --release --example fig12_looplift
//! ```

use std::time::Instant;

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::queries::{query_text, QUERY_IDS};
use mxq::xquery::Database;
use mxq::xquery::{ExecConfig, Session};
use std::sync::Arc;

fn time_query(session: &mut Session, id: usize) -> f64 {
    let t = Instant::now();
    session.query(query_text(id)).expect("query");
    t.elapsed().as_secs_f64()
}

fn main() {
    let factor = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.002);
    let xml = generate_xml(&GenParams::with_factor(factor));
    println!("Figure 12 — benefit of loop-lifted staircase join (scale factor {factor})");
    println!("values are speedups relative to the fully iterative configuration\n");

    let base_cfg = ExecConfig {
        loop_lifted_child: false,
        loop_lifted_descendant: false,
        nametest_pushdown: false,
        ..ExecConfig::default()
    };
    let configs: Vec<(&str, ExecConfig)> = vec![
        ("iter/iter", base_cfg),
        (
            "ll-child",
            ExecConfig {
                loop_lifted_child: true,
                ..base_cfg
            },
        ),
        (
            "ll-desc",
            ExecConfig {
                loop_lifted_descendant: true,
                ..base_cfg
            },
        ),
        (
            "ll-both",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: true,
                ..base_cfg
            },
        ),
        (
            "ll+nametest",
            ExecConfig {
                loop_lifted_child: true,
                loop_lifted_descendant: true,
                nametest_pushdown: true,
                ..base_cfg
            },
        ),
    ];

    // one shared database; one session per configuration
    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &xml).unwrap();
    let mut engines: Vec<(&str, Session)> = configs
        .iter()
        .map(|(name, cfg)| (*name, db.session_with_config(*cfg)))
        .collect();

    print!("{:>4}", "Q");
    for (name, _) in &engines {
        print!("{name:>14}");
    }
    println!();
    for id in QUERY_IDS {
        let mut times = Vec::new();
        for (_, session) in engines.iter_mut() {
            times.push(time_query(session, id));
        }
        let base = times[0];
        print!("{id:>4}");
        for t in &times {
            print!("{:>13.2}x", base / t.max(1e-9));
        }
        println!();
    }
    println!("\n(>1x means faster than the iterative staircase join, as in the paper's Figure 12)");
}
