//! Regenerates Table 1: elapsed time per XMark query, the relational engine
//! vs the naive DOM-walking comparator, next to the published MonetDB/XQuery
//! times for reference.
//!
//! ```sh
//! cargo run --release --example table1_xmark [scale_factor]
//! ```

use std::time::Instant;

use mxq::xmark::gen::{generate_xml, GenParams};
use mxq::xmark::naive::NaiveInterpreter;
use mxq::xmark::queries::{query_text, QUERY_IDS};
use mxq::xmark::survey::mxq_published;
use mxq::xmldb::DocStore;
use std::sync::Arc;

use mxq::xquery::Database;

fn main() {
    let factor: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.001);
    let xml = generate_xml(&GenParams::with_factor(factor));
    println!(
        "Table 1 — XMark query evaluation (this reproduction, scale factor {factor}, {:.1} KB)",
        xml.len() as f64 / 1024.0
    );

    let db = Arc::new(Database::new());
    db.load_document("auction.xml", &xml).unwrap();
    let mut session = db.session();

    let published = mxq_published("1.1MB");
    println!(
        "{:>4} {:>14} {:>14} {:>10}   {:>16}",
        "Q", "relational [s]", "naive [s]", "speedup", "paper MXQ@1.1MB"
    );
    for id in QUERY_IDS {
        let t = Instant::now();
        session.query(query_text(id)).expect("relational");
        let rel = t.elapsed().as_secs_f64();

        let mut store = DocStore::new();
        store.load_xml("auction.xml", &xml).unwrap();
        let mut naive = NaiveInterpreter::new(&mut store);
        let t = Instant::now();
        naive.run(query_text(id)).expect("naive");
        let nai = t.elapsed().as_secs_f64();

        let pub_time = published
            .iter()
            .find(|(q, _)| *q == id)
            .and_then(|(_, v)| *v)
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "DNF".into());
        println!(
            "{id:>4} {rel:>14.4} {nai:>14.4} {:>9.1}x   {pub_time:>16}",
            nai / rel.max(1e-9)
        );
    }
    println!("\nThe naive interpreter stands in for the tuple-at-a-time comparators of the paper");
    println!("(eXist / Galax / X-Hive / BDB); the join queries Q8–Q12 show the largest gaps.");
}
