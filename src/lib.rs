//! # mxq — MonetDB/XQuery reproduction (umbrella crate)
//!
//! This crate re-exports the public APIs of the workspace members so that the
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`engine`] — the column-store relational kernel (MonetDB substrate),
//! * [`xmldb`] — pre|size|level XML storage, shredder, serializer, updates,
//! * [`staircase`] — iterative and loop-lifted staircase join,
//! * [`xquery`] — the Pathfinder-style XQuery compiler and executor,
//! * [`xmark`] — the XMark benchmark generator, queries and baselines,
//! * [`wal`] — the write-ahead log substrate of the durability layer.
//!
//! See the README for a quickstart and DESIGN.md for the system inventory.

#![forbid(unsafe_code)]

pub use mxq_engine as engine;
pub use mxq_staircase as staircase;
pub use mxq_wal as wal;
pub use mxq_xmark as xmark;
pub use mxq_xmldb as xmldb;
pub use mxq_xquery as xquery;
